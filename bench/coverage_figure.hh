/**
 * @file
 * Shared driver for the coverage figures (paper Figures 10-14): each
 * figure sweeps the twenty workloads over four (or five) MNM
 * configurations on the paper's 5-level machine and reports coverage
 * percentages per app plus the arithmetic mean.
 */

#ifndef MNM_BENCH_COVERAGE_FIGURE_HH
#define MNM_BENCH_COVERAGE_FIGURE_HH

#include <string>
#include <vector>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace mnm
{

/** Run one coverage figure and print its table. Returns 0 on success. */
inline int
runCoverageFigure(const std::string &title,
                  const std::vector<std::string> &configs)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table(title);
    std::vector<std::string> header = {"app"};
    for (const std::string &config : configs)
        header.push_back(config);
    table.setHeader(header);

    for (const std::string &app : opts.apps) {
        std::vector<double> row;
        for (const std::string &config : configs) {
            MemSimResult r = runFunctional(
                paperHierarchy(5), mnmSpecByName(config), app,
                opts.instructions);
            row.push_back(100.0 * r.coverage.coverage());
            if (r.soundness_violations != 0) {
                warn("%s on %s: %llu soundness violations",
                     config.c_str(), app.c_str(),
                     static_cast<unsigned long long>(
                         r.soundness_violations));
            }
        }
        table.addRow(ExperimentOptions::shortName(app), row, 1);
    }
    table.addMeanRow("Arith. Mean", 1);
    table.print(opts.csv);
    return 0;
}

} // namespace mnm

#endif // MNM_BENCH_COVERAGE_FIGURE_HH
