/**
 * @file
 * Shared driver for the coverage figures (paper Figures 10-14): each
 * figure sweeps the twenty workloads over four (or five) MNM
 * configurations on the paper's 5-level machine and reports coverage
 * percentages per app plus the arithmetic mean.
 */

#ifndef MNM_BENCH_COVERAGE_FIGURE_HH
#define MNM_BENCH_COVERAGE_FIGURE_HH

#include <limits>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace mnm
{

/** Run one coverage figure and print its table. Returns 0 on success,
 *  1 when any sweep cell failed (its cells print as "<failed>"). */
inline int
runCoverageFigure(const std::string &title,
                  const std::vector<std::string> &configs)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName(title);
    Table table(title);
    std::vector<std::string> header = {"app"};
    std::vector<SweepVariant> variants;
    for (const std::string &config : configs) {
        header.push_back(config);
        variants.push_back({config, paperHierarchy(5),
                            mnmSpecByName(config)});
    }
    table.setHeader(header);

    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        const std::string &app = opts.apps[a];
        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const MemSimResult &r = results[a * configs.size() + c];
            if (r.failed) {
                row.push_back(std::numeric_limits<double>::quiet_NaN());
                continue;
            }
            row.push_back(100.0 * r.coverage.coverage());
            if (r.soundness_violations != 0) {
                warn("%s on %s: %llu soundness violations",
                     configs[c].c_str(), app.c_str(),
                     static_cast<unsigned long long>(
                         r.soundness_violations));
            }
        }
        table.addRow(ExperimentOptions::shortName(app), row, 1);
    }
    table.addMeanRow("Arith. Mean", 1);
    table.print(opts.csv);
    return sweepExitCode();
}

} // namespace mnm

#endif // MNM_BENCH_COVERAGE_FIGURE_HH
