/**
 * @file
 * Shared driver for the coverage figures (paper Figures 10-14): each
 * figure sweeps the twenty workloads over four (or five) MNM
 * configurations on the paper's 5-level machine and reports coverage
 * percentages per app plus the arithmetic mean.
 */

#ifndef MNM_BENCH_COVERAGE_FIGURE_HH
#define MNM_BENCH_COVERAGE_FIGURE_HH

#include <string>
#include <vector>

#include "core/presets.hh"
#include "harness.hh"
#include "util/logging.hh"

namespace mnm
{

/** Run one coverage figure and print its table. Returns 0 on success,
 *  1 when any sweep cell failed (its cells print as "<failed>"). */
inline int
runCoverageFigure(const std::string &title,
                  const std::vector<std::string> &configs)
{
    SweepTableBench bench(title, title);
    for (const std::string &config : configs)
        bench.addVariant(config, paperHierarchy(5),
                         mnmSpecByName(config));
    bench.useVariantHeader();
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const MemSimResult &r = bench.at(a, c);
            row.push_back(sweepCell(r, 100.0 * r.coverage.coverage()));
            if (!r.failed && r.soundness_violations != 0) {
                warn("%s on %s: %llu soundness violations",
                     configs[c].c_str(), bench.app(a).c_str(),
                     static_cast<unsigned long long>(
                         r.soundness_violations));
            }
        }
        bench.addAppRow(a, row, 1);
    }
    return bench.finish(1);
}

} // namespace mnm

#endif // MNM_BENCH_COVERAGE_FIGURE_HH
