/**
 * @file
 * Paper Figure 12: TMNM coverage (10x1, 11x2, 10x3, 12x3). Expected
 * shape: multi-table configurations beat a larger single table
 * (TMNM_10x3 > TMNM_11x2 on average), 12x3 best.
 */

#include "coverage_figure.hh"

int
main()
{
    return mnm::runCoverageFigure("Figure 12: TMNM coverage [%]",
                                  mnm::tmnmFigureConfigs());
}
