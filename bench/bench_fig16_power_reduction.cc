/**
 * @file
 * Paper Figure 16: reduction in the cache system's dynamic energy with
 * a *serial* MNM (probed only after an L1 miss), for TMNM_12x3,
 * CMNM_8_10, HMNM2, HMNM4, and the perfect MNM.
 *
 * Expected shape: positive but smaller than the cycle reductions;
 * perfect (zero-cost oracle) bounds the real techniques; apps with
 * expensive lower-level probes and churn benefit most.
 */

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Figure 16: reduction in cache power consumption, "
                "serial MNM [%]");
    std::vector<std::string> header = {"app"};
    for (const std::string &config : headlineConfigs())
        header.push_back(config);
    table.setHeader(header);

    for (const std::string &app : opts.apps) {
        MemSimResult base = runFunctional(paperHierarchy(5), std::nullopt,
                                          app, opts.instructions);
        std::vector<double> row;
        for (const std::string &config : headlineConfigs()) {
            MnmSpec spec = mnmSpecByName(config);
            spec.placement = MnmPlacement::Serial;
            MemSimResult r = runFunctional(paperHierarchy(5), spec, app,
                                           opts.instructions);
            row.push_back(100.0 *
                          (base.energy.total() - r.energy.total()) /
                          base.energy.total());
        }
        table.addRow(ExperimentOptions::shortName(app), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
