/**
 * @file
 * Paper Figure 16: reduction in the cache system's dynamic energy with
 * a *serial* MNM (probed only after an L1 miss), for TMNM_12x3,
 * CMNM_8_10, HMNM2, HMNM4, and the perfect MNM.
 *
 * Expected shape: positive but smaller than the cycle reductions;
 * perfect (zero-cost oracle) bounds the real techniques; apps with
 * expensive lower-level probes and churn benefit most.
 */

#include <limits>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("fig16_power_reduction");
    Table table("Figure 16: reduction in cache power consumption, "
                "serial MNM [%]");
    std::vector<std::string> header = {"app"};
    // Variant 0 is the baseline; the headline configs follow.
    std::vector<SweepVariant> variants = {
        {"baseline", paperHierarchy(5), std::nullopt}};
    for (const std::string &config : headlineConfigs()) {
        header.push_back(config);
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Serial;
        variants.push_back({config, paperHierarchy(5), spec});
    }
    table.setHeader(header);

    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        const MemSimResult &base = results[a * variants.size()];
        std::vector<double> row;
        for (std::size_t v = 1; v < variants.size(); ++v) {
            const MemSimResult &r = results[a * variants.size() + v];
            // A failed baseline gaps the whole row: the reduction is
            // relative, so no cell on it is computable.
            row.push_back(base.failed
                              ? std::numeric_limits<double>::quiet_NaN()
                              : sweepCell(r, 100.0 *
                                                 (base.energy.total() -
                                                  r.energy.total()) /
                                                 base.energy.total()));
        }
        table.addRow(ExperimentOptions::shortName(opts.apps[a]), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return sweepExitCode();
}
