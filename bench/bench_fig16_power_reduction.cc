/**
 * @file
 * Paper Figure 16: reduction in the cache system's dynamic energy with
 * a *serial* MNM (probed only after an L1 miss), for TMNM_12x3,
 * CMNM_8_10, HMNM2, HMNM4, and the perfect MNM.
 *
 * Expected shape: positive but smaller than the cycle reductions;
 * perfect (zero-cost oracle) bounds the real techniques; apps with
 * expensive lower-level probes and churn benefit most.
 */

#include <limits>

#include "core/presets.hh"
#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench("fig16_power_reduction",
                          "Figure 16: reduction in cache power "
                          "consumption, serial MNM [%]");
    // Variant 0 is the baseline; the headline configs follow.
    bench.addVariant("baseline", paperHierarchy(5));
    for (const std::string &config : headlineConfigs()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Serial;
        bench.addVariant(config, paperHierarchy(5), spec);
    }
    bench.useVariantHeader(1);
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &base = bench.at(a, 0);
        std::vector<double> row;
        for (std::size_t v = 1; v < bench.numVariants(); ++v) {
            const MemSimResult &r = bench.at(a, v);
            // A failed baseline gaps the whole row: the reduction is
            // relative, so no cell on it is computable.
            row.push_back(base.failed
                              ? std::numeric_limits<double>::quiet_NaN()
                              : sweepCell(r, 100.0 *
                                                 (base.energy.total() -
                                                  r.energy.total()) /
                                                 base.energy.total()));
        }
        bench.addAppRow(a, row, 2);
    }
    return bench.finish(2);
}
