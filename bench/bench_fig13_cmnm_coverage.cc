/**
 * @file
 * Paper Figure 13: CMNM coverage (2_9, 4_10, 8_10, 8_12). Expected
 * shape: the best coverage among the single techniques; grows with
 * registers and table size.
 */

#include "coverage_figure.hh"

int
main()
{
    return mnm::runCoverageFigure("Figure 13: CMNM coverage [%]",
                                  mnm::cmnmFigureConfigs());
}
