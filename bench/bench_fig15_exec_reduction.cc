/**
 * @file
 * Paper Figure 15: reduction in execution cycles with a *parallel* MNM,
 * for TMNM_12x3, CMNM_8_10, HMNM2, HMNM4, and the perfect MNM, on the
 * paper's 8-way 5-level machine.
 *
 * Expected shape: every technique helps (never hurts -- the parallel
 * MNM adds no latency); ordering follows coverage (HMNM4 best among
 * real techniques); the perfect MNM roughly doubles the best hybrid's
 * gain; miss-heavy apps benefit the most.
 */

#include "core/presets.hh"
#include "cpu/ooo_core.hh"
#include "harness.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

Cycles
runCycles(const std::string &app, const std::string &config,
          std::uint64_t instructions)
{
    CacheHierarchy hierarchy(paperHierarchy(5));
    std::unique_ptr<MnmUnit> mnm;
    if (!config.empty()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Parallel;
        mnm = std::make_unique<MnmUnit>(spec, hierarchy);
    }
    OooCore core(paperCpu(5), hierarchy, mnm.get());
    auto workload = makeSpecWorkload(app);
    // Warm the hierarchy, then measure.
    core.run(*workload, instructions / 10);
    return core.run(*workload, instructions).cycles;
}

} // anonymous namespace

int
main()
{
    SweepTableBench bench("fig15_exec_reduction",
                          "Figure 15: reduction in execution cycles, "
                          "parallel MNM [%]");
    const ExperimentOptions &opts = bench.opts();
    std::vector<std::string> header = {"app"};
    // Variant 0 is the baseline (no MNM); the headline configs follow.
    std::vector<std::string> configs = {""};
    for (const std::string &config : headlineConfigs()) {
        header.push_back(config);
        configs.push_back(config);
    }
    bench.setHeader(header);

    // Timing-core runs, one cell per (app, config), app-major. Every
    // column is baseline-relative, so a failure aborts the bench with
    // the aggregate error list instead of printing gap markers.
    ParallelRunner runner(opts.jobs);
    std::vector<Cycles> cycles;
    try {
        cycles = runner.map<Cycles>(
            opts.apps.size() * configs.size(), [&](std::size_t i) {
                return runCycles(opts.apps[i / configs.size()],
                                 configs[i % configs.size()],
                                 opts.instructions);
            });
    } catch (const SweepFailure &e) {
        fatal("%s", e.what());
    }

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        Cycles base = cycles[a * configs.size()];
        std::vector<double> row;
        for (std::size_t c = 1; c < configs.size(); ++c) {
            row.push_back(100.0 *
                          (static_cast<double>(base) -
                           static_cast<double>(
                               cycles[a * configs.size() + c])) /
                          static_cast<double>(base));
        }
        bench.addAppRow(a, row, 2);
    }
    return bench.finish(2);
}
