/**
 * @file
 * Paper Figure 15: reduction in execution cycles with a *parallel* MNM,
 * for TMNM_12x3, CMNM_8_10, HMNM2, HMNM4, and the perfect MNM, on the
 * paper's 8-way 5-level machine.
 *
 * Expected shape: every technique helps (never hurts -- the parallel
 * MNM adds no latency); ordering follows coverage (HMNM4 best among
 * real techniques); the perfect MNM roughly doubles the best hybrid's
 * gain; miss-heavy apps benefit the most.
 */

#include "core/presets.hh"
#include "cpu/ooo_core.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace mnm;

namespace
{

Cycles
runCycles(const std::string &app, const std::string &config,
          std::uint64_t instructions)
{
    CacheHierarchy hierarchy(paperHierarchy(5));
    std::unique_ptr<MnmUnit> mnm;
    if (!config.empty()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Parallel;
        mnm = std::make_unique<MnmUnit>(spec, hierarchy);
    }
    OooCore core(paperCpu(5), hierarchy, mnm.get());
    auto workload = makeSpecWorkload(app);
    // Warm the hierarchy, then measure.
    core.run(*workload, instructions / 10);
    return core.run(*workload, instructions).cycles;
}

} // anonymous namespace

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Figure 15: reduction in execution cycles, parallel MNM "
                "[%]");
    std::vector<std::string> header = {"app"};
    for (const std::string &config : headlineConfigs())
        header.push_back(config);
    table.setHeader(header);

    for (const std::string &app : opts.apps) {
        Cycles base = runCycles(app, "", opts.instructions);
        std::vector<double> row;
        for (const std::string &config : headlineConfigs()) {
            Cycles cycles = runCycles(app, config, opts.instructions);
            row.push_back(100.0 *
                          (static_cast<double>(base) -
                           static_cast<double>(cycles)) /
                          static_cast<double>(base));
        }
        table.addRow(ExperimentOptions::shortName(app), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
