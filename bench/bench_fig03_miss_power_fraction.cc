/**
 * @file
 * Paper Figure 3: fraction of the caches' dynamic energy consumed by
 * probes that miss, for machines with 2, 3, 5 and 7 cache levels.
 *
 * Expected shape: generally grows with levels, but less steeply than
 * the time fraction (Figure 2) because the largest, most power-hungry
 * caches have the smallest miss ratios; for very miss-heavy apps the
 * fraction can dip at high level counts, as the paper observes.
 */

#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench(
        "fig03_miss_power_fraction",
        "Figure 3: fraction of misses in cache power consumption [%]");
    for (int levels : {2, 3, 5, 7}) {
        bench.addVariant(std::to_string(levels) + "-level",
                         paperHierarchy(levels));
    }
    bench.useVariantHeader();
    bench.runGrid();
    bench.addMetricRows(1, [](const MemSimResult &r) {
        return 100.0 * r.energy.missFraction();
    });
    return bench.finish(1);
}
