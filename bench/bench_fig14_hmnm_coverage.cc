/**
 * @file
 * Paper Figure 14: Hybrid MNM coverage (HMNM1-4). Expected shape: the
 * best coverage overall, growing with configuration complexity; the
 * paper reports ~53% average for HMNM4.
 */

#include "coverage_figure.hh"

int
main()
{
    return mnm::runCoverageFigure("Figure 14: HMNM coverage [%]",
                                  mnm::hmnmFigureConfigs());
}
