/**
 * @file
 * Ablation: cache-content policy. The paper assumes NON-inclusive
 * caches (Section 3); this bench re-runs the headline hybrid under
 * strict inclusion (evictions back-invalidate upper copies). Inclusion
 * creates extra replacement traffic -- which the MNM *sees*, keeping it
 * sound -- and more upper-level misses, typically RAISING coverage
 * (more identifiable misses) while degrading baseline hit rates.
 */

#include <limits>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("abl_inclusion");
    Table table("Ablation: HMNM4 under non-inclusive vs inclusive "
                "hierarchies");
    table.setHeader({"app", "noninc cov%", "inc cov%", "noninc t[cyc]",
                     "inc t[cyc]", "violations"});

    HierarchyParams inc = paperHierarchy(5);
    inc.inclusion = InclusionPolicy::Inclusive;
    std::vector<SweepVariant> variants = {
        {"non-inclusive", paperHierarchy(5), makeHmnmSpec(4)},
        {"inclusive", inc, makeHmnmSpec(4)}};
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        const MemSimResult &rn = results[a * 2];
        const MemSimResult &ri = results[a * 2 + 1];
        // The violations column sums both cells, so either failure
        // gaps it.
        double violations =
            (rn.failed || ri.failed)
                ? std::numeric_limits<double>::quiet_NaN()
                : static_cast<double>(rn.soundness_violations +
                                      ri.soundness_violations);
        table.addRow(ExperimentOptions::shortName(opts.apps[a]),
                     {sweepCell(rn, 100.0 * rn.coverage.coverage()),
                      sweepCell(ri, 100.0 * ri.coverage.coverage()),
                      sweepCell(rn, rn.avgAccessTime()),
                      sweepCell(ri, ri.avgAccessTime()), violations},
                     2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return sweepExitCode();
}
