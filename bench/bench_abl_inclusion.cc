/**
 * @file
 * Ablation: cache-content policy. The paper assumes NON-inclusive
 * caches (Section 3); this bench re-runs the headline hybrid under
 * strict inclusion (evictions back-invalidate upper copies). Inclusion
 * creates extra replacement traffic -- which the MNM *sees*, keeping it
 * sound -- and more upper-level misses, typically RAISING coverage
 * (more identifiable misses) while degrading baseline hit rates.
 */

#include <limits>

#include "core/presets.hh"
#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench("abl_inclusion",
                          "Ablation: HMNM4 under non-inclusive vs "
                          "inclusive hierarchies");
    bench.setHeader({"app", "noninc cov%", "inc cov%", "noninc t[cyc]",
                     "inc t[cyc]", "violations"});

    HierarchyParams inc = paperHierarchy(5);
    inc.inclusion = InclusionPolicy::Inclusive;
    bench.addVariant("non-inclusive", paperHierarchy(5), makeHmnmSpec(4));
    bench.addVariant("inclusive", inc, makeHmnmSpec(4));
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &rn = bench.at(a, 0);
        const MemSimResult &ri = bench.at(a, 1);
        // The violations column sums both cells, so either failure
        // gaps it.
        double violations =
            (rn.failed || ri.failed)
                ? std::numeric_limits<double>::quiet_NaN()
                : static_cast<double>(rn.soundness_violations +
                                      ri.soundness_violations);
        bench.addAppRow(a,
                        {sweepCell(rn, 100.0 * rn.coverage.coverage()),
                         sweepCell(ri, 100.0 * ri.coverage.coverage()),
                         sweepCell(rn, rn.avgAccessTime()),
                         sweepCell(ri, ri.avgAccessTime()), violations},
                        2);
    }
    return bench.finish(2);
}
