/**
 * @file
 * Extension (paper Section 4.5): MNM filtering applied to the TLBs.
 * For each workload, the data-address stream is translated through a
 * 64-entry fully-associative DTLB, with and without a TMNM-style filter
 * in front. Reported: TLB miss rate, filter coverage of those misses,
 * probe energy avoided (CAM probes skipped) net of the filter's own
 * energy, and average translation latency.
 */

#include "cache/tlb.hh"
#include "core/tlb_filter.hh"
#include "harness.hh"
#include "power/sram_model.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

/** One app's measurements, produced by its sweep cell. */
struct TlbRow
{
    std::vector<double> cells;
    std::uint64_t violations = 0;
};

} // anonymous namespace

int
main()
{
    SweepTableBench bench("ext_tlb_filter",
                          "Extension: TMNM_8x2 filtering a 64-entry "
                          "DTLB");
    const ExperimentOptions &opts = bench.opts();
    bench.setHeader({"app", "tlb miss%", "coverage%", "net saved%",
                     "t base", "t filt"});

    SramModel sram;
    // A 64-entry fully-associative TLB is a CAM probe per access.
    PowerDelay tlb_probe = sram.cam(64, 20);

    // Direct ParallelRunner use: a failed app aborts the bench with
    // the aggregate error list (no per-cell gap markers here).
    ParallelRunner runner(opts.jobs);
    std::vector<TlbRow> rows;
    try {
        rows = runner.map<TlbRow>(opts.apps.size(), [&](std::size_t a) {
            const std::string &app = opts.apps[a];
            TlbParams params;
            params.entries = 64;
            params.associativity = 0;

            // Baseline: bare TLB.
            Tlb base(params);
            auto w1 = makeSpecWorkload(app);
            Instruction inst;
            Cycles base_cycles = 0;
            std::uint64_t accesses = 0;
            for (std::uint64_t i = 0; i < opts.instructions; ++i) {
                w1->next(inst);
                if (!inst.isMem())
                    continue;
                base_cycles += base.translate(inst.mem_addr);
                ++accesses;
            }

            // Filtered: TMNM at page granularity.
            Tlb filtered(params);
            TlbFilterUnit filter(TmnmSpec{8, 2, 3}, filtered);
            auto w2 = makeSpecWorkload(app);
            Cycles filt_cycles = 0;
            for (std::uint64_t i = 0; i < opts.instructions; ++i) {
                w2->next(inst);
                if (!inst.isMem())
                    continue;
                filt_cycles += filter.translate(inst.mem_addr);
            }

            double base_energy =
                tlb_probe.read_energy_pj * static_cast<double>(accesses);
            double filt_energy =
                tlb_probe.read_energy_pj *
                    static_cast<double>(filtered.stats().accesses.value()) +
                filter.consumedEnergyPj();
            return TlbRow{
                {100.0 * (1.0 - base.stats().hitRate()),
                 100.0 * filter.coverage(),
                 100.0 * (base_energy - filt_energy) / base_energy,
                 ratio(static_cast<double>(base_cycles),
                       static_cast<double>(accesses)),
                 ratio(static_cast<double>(filt_cycles),
                       static_cast<double>(accesses))},
                filter.soundnessViolations()};
        });
    } catch (const SweepFailure &e) {
        fatal("%s", e.what());
    }

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        bench.addAppRow(a, rows[a].cells, 2);
        if (rows[a].violations != 0)
            warn("TLB filter violations on %s", bench.app(a).c_str());
    }
    return bench.finish(2);
}
