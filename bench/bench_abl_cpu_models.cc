/**
 * @file
 * Ablation: the two core models. The benches use the fast one-pass
 * dataflow model (ooo_core); the cycle-driven model (cycle_core) is the
 * reference. This bench shows that both produce the same *relative*
 * story for Figure 15 -- baseline > HMNM4 > Perfect in cycles -- and
 * reports how far apart their absolute IPCs sit.
 */

#include <memory>

#include "core/presets.hh"
#include "cpu/cycle_core.hh"
#include "harness.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

template <typename Core>
Cycles
runCore(const std::string &app, const std::string &config,
        std::uint64_t instructions)
{
    CacheHierarchy hierarchy(paperHierarchy(5));
    std::unique_ptr<MnmUnit> mnm;
    if (!config.empty())
        mnm = std::make_unique<MnmUnit>(mnmSpecByName(config), hierarchy);
    Core core(paperCpu(5), hierarchy, mnm.get());
    auto workload = makeSpecWorkload(app);
    return core.run(*workload, instructions).cycles;
}

} // anonymous namespace

int
main()
{
    SweepTableBench bench("abl_cpu_models",
                          "Ablation: dataflow vs cycle-driven core "
                          "(cycle-reduction %, both models)");
    const ExperimentOptions &opts = bench.opts();
    // The cycle model is ~5x slower; cap the per-app budget.
    std::uint64_t n = std::min<std::uint64_t>(opts.instructions, 500000);

    bench.setHeader({"app", "df HMNM4", "cyc HMNM4", "df Perfect",
                     "cyc Perfect", "ipc ratio"});

    // Six timing runs per app (2 core models x 3 configs), flattened
    // into one cell grid so every run parallelizes independently.
    const char *configs[] = {"", "HMNM4", "Perfect"};
    constexpr std::size_t kinds = 6;
    ParallelRunner runner(opts.jobs);
    std::vector<Cycles> cycles;
    try {
        cycles = runner.map<Cycles>(
            opts.apps.size() * kinds, [&](std::size_t i) {
                const std::string &app = opts.apps[i / kinds];
                std::size_t k = i % kinds;
                const char *config = configs[k % 3];
                return k < 3 ? runCore<OooCore>(app, config, n)
                             : runCore<CycleOooCore>(app, config, n);
            });
    } catch (const SweepFailure &e) {
        fatal("%s", e.what());
    }

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const Cycles *c = &cycles[a * kinds];
        Cycles df_base = c[0], df_hmnm = c[1], df_perf = c[2];
        Cycles cy_base = c[3], cy_hmnm = c[4], cy_perf = c[5];

        auto reduction = [](Cycles base, Cycles with) {
            return 100.0 *
                   (static_cast<double>(base) -
                    static_cast<double>(with)) /
                   static_cast<double>(base);
        };
        bench.addAppRow(a,
                        {reduction(df_base, df_hmnm),
                         reduction(cy_base, cy_hmnm),
                         reduction(df_base, df_perf),
                         reduction(cy_base, cy_perf),
                         static_cast<double>(cy_base) /
                             static_cast<double>(df_base)},
                        2);
    }
    return bench.finish(2);
}
