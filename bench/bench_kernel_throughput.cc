/**
 * @file
 * Simulation-kernel throughput: functional-mode instructions per second
 * for representative MNM configurations on the paper's 5-level machine,
 * with one cell per SIMD backend where the backend matters.
 *
 * This bench measures the simulator, not the simulated machine: its
 * numbers are wall-clock dependent and NOT byte-stable across runs, so
 * it is deliberately excluded from the CI byte-diff that guards every
 * other bench. It seeds and guards the kernel's performance trajectory
 * instead: with MNM_BENCH_JSON=<path> it writes a machine-readable
 * summary (schema mnm-kernel-bench-v2), which CI's Release job compares
 * against the committed BENCH_kernel.json baseline via
 * tools/extract_results.py --perf.
 *
 * Backends are reported under ROLE names, not ISA names: "off" (the
 * legacy per-access plan walk), "scalar-soa", and "native" (whatever
 * vector ISA this machine runs -- AVX2, NEON, or scalar-soa again when
 * neither exists; the summary records the resolution). Role names keep
 * one committed baseline comparable across recording and CI machines
 * with different ISAs.
 *
 * Methodology: every (config, backend) cell owns one simulator; after
 * a warm-up run, the cell is measured in MNM_BENCH_ROUNDS consecutive
 * rounds of MNM_INSTRUCTIONS each and reports its best round (minimum
 * time). Rounds run back-to-back per cell -- interleaving cells would
 * evict each cell's tag arrays and filter tables from the LLC between
 * its rounds, measuring the machine's cache size instead of the
 * kernel -- and min-time is the standard robust throughput estimator
 * under external noise: slowdowns from host contention are one-sided,
 * so the fastest observed round is the closest to the kernel's true
 * cost.
 *
 * Knobs: MNM_INSTRUCTIONS (measured window per round), MNM_BENCH_ROUNDS
 * (rounds; default 5), MNM_APPS (the first named workload drives the
 * measurement; default 164.gzip), and MNM_BENCH_JSON (summary path;
 * unset = table only).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "obs/phase_profiler.hh"
#include "obs/registry.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "util/cpu.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

/** One measured configuration: a paper label or "off" (no MNM). */
struct KernelConfig
{
    const char *label;
    bool mnm_enabled;
    /** Measure one cell per backend role? The bare hierarchy has no
     *  verdicts at all and the perfect oracle's verdicts are cache
     *  probes every backend serves with the same scalar pass, so both
     *  report a single "n/a" cell. */
    bool per_backend;
};

constexpr KernelConfig kernel_configs[] = {
    {"off", false, false},        //!< bare hierarchy: the kernel floor
    {"RMNM_2048_4", true, true},  //!< shared replacement tracker only
    {"TMNM_13x2", true, true},    //!< per-cache counting tables
    {"HMNM4", true, true},        //!< the paper's widest hybrid (headline)
    {"Perfect", true, false},     //!< oracle: contains(), no filters
};

/** Backend roles a per-backend config is measured under. */
struct BackendRole
{
    const char *role;
    SimdBackend backend;
};

/** One (config, backend) measurement cell and its live simulator. */
struct Cell
{
    std::string config;
    std::string backend_role; //!< "off" / "scalar-soa" / "native" / "n/a"
    std::unique_ptr<MemorySimulator> sim;
    std::unique_ptr<WorkloadGenerator> workload;
    double best_instr_per_sec = 0.0;
    /** Phase attribution over this cell's measured rounds (MNM_PROF
     *  active only; warm-up excluded). */
    PhaseTotals prof;
};

double
measureWindow(Cell &cell, std::uint64_t instructions)
{
    auto start = std::chrono::steady_clock::now();
    MemSimResult result = cell.sim->run(*cell.workload, instructions);
    auto stop = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds <= 0.0)
        fatal("kernel bench measured a non-positive interval; raise "
              "MNM_INSTRUCTIONS");
    return static_cast<double>(result.instructions) / seconds;
}

/** Optional per-cell JSON suffix: phase shares when MNM_PROF is active
 *  ("" otherwise, keeping the summary byte-identical with knobs unset).
 *  Additive to schema v2 -- the perf gate reads instr_per_sec only. */
std::string
profSharesJson(const PhaseTotals &totals)
{
    const std::uint64_t total = totals.totalTicks();
    if (total == 0)
        return "";
    std::string out = ", \"prof\": {";
    bool first = true;
    for (int p = 0; p < num_phases; ++p) {
        if (totals.phase[p].ticks == 0)
            continue;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f",
                      first ? "" : ", ",
                      phaseName(static_cast<Phase>(p)),
                      static_cast<double>(totals.phase[p].ticks) /
                          static_cast<double>(total));
        out += buf;
        first = false;
    }
    out += "}";
    return out;
}

std::uint64_t
roundsFromEnv()
{
    const char *value = std::getenv("MNM_BENCH_ROUNDS");
    if (!value || !*value)
        return 5;
    char *end = nullptr;
    unsigned long long rounds = std::strtoull(value, &end, 10);
    if (!end || *end || rounds == 0)
        fatal("MNM_BENCH_ROUNDS must be a positive integer, got '%s'",
              value);
    return rounds;
}

} // anonymous namespace

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    std::string app = opts.apps.empty() ? "164.gzip" : opts.apps.front();
    const std::uint64_t rounds = roundsFromEnv();
    const SimdBackend native = nativeSimdBackend();

    const BackendRole roles[] = {
        {"off", SimdBackend::Off},
        {"scalar-soa", SimdBackend::ScalarSoa},
        {"native", native},
    };

    std::vector<Cell> cells;
    for (const KernelConfig &config : kernel_configs) {
        std::size_t num_roles =
            config.per_backend ? std::size(roles) : 1;
        for (std::size_t r = 0; r < num_roles; ++r) {
            Cell cell;
            cell.config = config.label;
            cell.backend_role =
                config.per_backend ? roles[r].role : "n/a";
            std::optional<MnmSpec> spec;
            if (config.mnm_enabled)
                spec = mnmSpecByName(config.label);
            cell.sim = std::make_unique<MemorySimulator>(
                paperHierarchy(5), spec);
            if (config.per_backend)
                cell.sim->mnm()->setSimdBackend(roles[r].backend);
            cell.workload = makeSpecWorkload(app);
            cells.push_back(std::move(cell));
        }
    }

    for (Cell &cell : cells) {
        // Warm the cell's caches and filters outside the timed rounds,
        // mirroring runFunctional()'s 10% warm-up discipline.
        cell.sim->run(*cell.workload, opts.instructions / 10);
        const PhaseTotals prof_before = threadPhaseTotals();
        for (std::uint64_t round = 0; round < rounds; ++round) {
            double ips = measureWindow(cell, opts.instructions);
            if (ips > cell.best_instr_per_sec)
                cell.best_instr_per_sec = ips;
        }
        if (profActive()) {
            cell.prof =
                phaseTotalsDelta(prof_before, threadPhaseTotals());
            foldPhaseTotals(
                globalStats(), cell.prof,
                "prof.cell." + sanitizeMetricSegment(cell.config) + "." +
                    sanitizeMetricSegment(cell.backend_role));
        }
    }

    std::printf("== Kernel throughput (%s, %llu instructions/round, "
                "best of %llu rounds) ==\n",
                app.c_str(),
                static_cast<unsigned long long>(opts.instructions),
                static_cast<unsigned long long>(rounds));
    std::printf("%-12s  %-12s  %14s\n", "config", "backend",
                "instr_per_sec");
    for (const Cell &cell : cells) {
        std::printf("%-12s  %-12s  %14.0f\n", cell.config.c_str(),
                    cell.backend_role.c_str(),
                    cell.best_instr_per_sec);
    }

    const char *json_path = std::getenv("MNM_BENCH_JSON");
    if (json_path && *json_path) {
        std::FILE *f = std::fopen(json_path, "w");
        if (!f)
            fatal("cannot write MNM_BENCH_JSON file '%s'", json_path);
        std::fprintf(f, "{\n  \"schema\": \"mnm-kernel-bench-v2\",\n");
        std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
        std::fprintf(f, "  \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(opts.instructions));
        std::fprintf(f, "  \"rounds\": %llu,\n",
                     static_cast<unsigned long long>(rounds));
        std::fprintf(f, "  \"estimator\": \"best-of-rounds\",\n");
        std::fprintf(f, "  \"native_backend\": \"%s\",\n",
                     simdBackendName(native));
        std::fprintf(f, "  \"configs\": {\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            bool open = i == 0 || cells[i].config != cells[i - 1].config;
            bool close = i + 1 == cells.size() ||
                         cells[i + 1].config != cells[i].config;
            if (open)
                std::fprintf(f, "    \"%s\": {\n",
                             cells[i].config.c_str());
            std::fprintf(f,
                         "      \"%s\": {\"instr_per_sec\": %.0f%s}%s\n",
                         cells[i].backend_role.c_str(),
                         cells[i].best_instr_per_sec,
                         profSharesJson(cells[i].prof).c_str(),
                         close ? "" : ",");
            if (close) {
                std::fprintf(f, "    }%s\n",
                             i + 1 == cells.size() ? "" : ",");
            }
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "kernel bench summary written to %s\n",
                     json_path);
    }
    return 0;
}
