/**
 * @file
 * Simulation-kernel throughput: functional-mode instructions per second
 * for representative MNM configurations on the paper's 5-level machine.
 *
 * This bench measures the simulator, not the simulated machine: its
 * numbers are wall-clock dependent and NOT byte-stable across runs, so
 * it is deliberately excluded from the CI byte-diff that guards every
 * other bench. It seeds and guards the kernel's performance trajectory
 * instead: with MNM_BENCH_JSON=<path> it writes a machine-readable
 * summary (schema mnm-kernel-bench-v1), which CI's Release job compares
 * against the committed BENCH_kernel.json baseline via
 * tools/extract_results.py --perf.
 *
 * Knobs: MNM_INSTRUCTIONS (measured window per config), MNM_APPS (the
 * first named workload drives the measurement; default 164.gzip), and
 * MNM_BENCH_JSON (summary path; unset = table only).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

/** One measured configuration: a paper label or "off" (no MNM). */
struct KernelConfig
{
    const char *label;
    bool mnm_enabled;
};

constexpr KernelConfig kernel_configs[] = {
    {"off", false},         //!< bare hierarchy: the kernel floor
    {"RMNM_2048_4", true},  //!< shared replacement tracker only
    {"TMNM_13x2", true},    //!< per-cache counting tables
    {"HMNM4", true},        //!< the paper's widest hybrid (headline)
    {"Perfect", true},      //!< oracle: contains() per level, no filters
};

double
measureInstrPerSec(const std::string &app, const KernelConfig &config,
                   std::uint64_t instructions)
{
    std::optional<MnmSpec> spec;
    if (config.mnm_enabled)
        spec = mnmSpecByName(config.label);
    MemorySimulator sim(paperHierarchy(5), spec);
    std::unique_ptr<WorkloadGenerator> workload = makeSpecWorkload(app);

    // Warm the caches and filters outside the timed window, mirroring
    // runFunctional()'s 10% warm-up discipline.
    sim.run(*workload, instructions / 10);

    auto start = std::chrono::steady_clock::now();
    MemSimResult result = sim.run(*workload, instructions);
    auto stop = std::chrono::steady_clock::now();

    double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds <= 0.0)
        fatal("kernel bench measured a non-positive interval; raise "
              "MNM_INSTRUCTIONS");
    return static_cast<double>(result.instructions) / seconds;
}

} // anonymous namespace

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    std::string app = opts.apps.empty() ? "164.gzip" : opts.apps.front();

    std::printf("== Kernel throughput (%s, %llu instructions/config) ==\n",
                app.c_str(),
                static_cast<unsigned long long>(opts.instructions));
    std::printf("%-12s  %14s\n", "config", "instr_per_sec");

    std::vector<std::pair<std::string, double>> rows;
    for (const KernelConfig &config : kernel_configs) {
        double ips = measureInstrPerSec(app, config, opts.instructions);
        rows.emplace_back(config.label, ips);
        std::printf("%-12s  %14.0f\n", config.label, ips);
    }

    const char *json_path = std::getenv("MNM_BENCH_JSON");
    if (json_path && *json_path) {
        std::FILE *f = std::fopen(json_path, "w");
        if (!f)
            fatal("cannot write MNM_BENCH_JSON file '%s'", json_path);
        std::fprintf(f, "{\n  \"schema\": \"mnm-kernel-bench-v1\",\n");
        std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
        std::fprintf(f, "  \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(opts.instructions));
        std::fprintf(f, "  \"configs\": {\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(f, "    \"%s\": {\"instr_per_sec\": %.0f}%s\n",
                         rows[i].first.c_str(), rows[i].second,
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "kernel bench summary written to %s\n",
                     json_path);
    }
    return 0;
}
