/**
 * @file
 * Shared skeleton of the sweep-table benches.
 *
 * Nearly every bench in this directory has the same spine: read
 * ExperimentOptions from the environment, name the run for the
 * manifest, build a Table, register (label, hierarchy, spec) variants,
 * run the apps x variants grid through runSweep, emit one row per app
 * with gap markers for failed cells, append the arithmetic-mean row,
 * print (plain or CSV), and exit via sweepExitCode(). SweepTableBench
 * hoists that spine so each bench states only what is unique to it:
 * its variants, its metric, and any custom row layout.
 *
 * Output is produced by the same Table/sweepCell/sweepExitCode calls
 * the benches previously made directly, so adopting the harness changes
 * no bytes on stdout.
 */

#ifndef MNM_BENCH_HARNESS_HH
#define MNM_BENCH_HARNESS_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

namespace mnm
{

/** One bench's options, run name, table, variants, and results. */
class SweepTableBench
{
  public:
    /**
     * @param run_name manifest run name (MNM_STATS_JSON meta block)
     * @param title    printed table title
     */
    SweepTableBench(const std::string &run_name, const std::string &title)
        : opts_(ExperimentOptions::fromEnv()), table_(title)
    {
        setRunName(run_name);
    }

    ExperimentOptions &opts() { return opts_; }
    const ExperimentOptions &opts() const { return opts_; }
    Table &table() { return table_; }

    /** Register one sweep variant (a table column group). */
    void addVariant(const std::string &label, const HierarchyParams &h,
                    std::optional<MnmSpec> spec = std::nullopt)
    {
        variants_.push_back({label, h, std::move(spec)});
    }

    /** Header "app" + one column per variant label, starting at
     *  variant @p first (baseline-relative benches skip column 0). */
    void useVariantHeader(std::size_t first = 0)
    {
        std::vector<std::string> header = {"app"};
        for (std::size_t v = first; v < variants_.size(); ++v)
            header.push_back(variants_[v].label);
        table_.setHeader(header);
    }

    void setHeader(const std::vector<std::string> &header)
    {
        table_.setHeader(header);
    }

    /** Run the full apps x variants grid (app-major, like the cell
     *  layout makeGridCells produces). */
    void runGrid()
    {
        results_ = runSweep(
            makeGridCells(opts_.apps, variants_, opts_.instructions),
            opts_);
    }

    std::size_t numApps() const { return opts_.apps.size(); }
    std::size_t numVariants() const { return variants_.size(); }
    const std::string &app(std::size_t a) const { return opts_.apps[a]; }
    const std::string &variantLabel(std::size_t v) const
    {
        return variants_[v].label;
    }

    /** Result of app @p a under variant @p v (after runGrid()). */
    const MemSimResult &at(std::size_t a, std::size_t v) const
    {
        return results_[a * variants_.size() + v];
    }

    /** Add one app's row (short app name, gap markers already folded
     *  into @p row via sweepCell). */
    void addAppRow(std::size_t a, std::vector<double> row, int decimals)
    {
        table_.addRow(ExperimentOptions::shortName(opts_.apps[a]),
                      std::move(row), decimals);
    }

    /**
     * The common row shape: one column per variant, each
     * sweepCell(r, metric(r)). A failed cell's metric value is
     * discarded and the cell renders as the gap marker.
     */
    template <typename Metric>
    void addMetricRows(int decimals, Metric &&metric)
    {
        for (std::size_t a = 0; a < numApps(); ++a) {
            std::vector<double> row;
            for (std::size_t v = 0; v < numVariants(); ++v) {
                const MemSimResult &r = at(a, v);
                row.push_back(sweepCell(r, metric(r)));
            }
            addAppRow(a, std::move(row), decimals);
        }
    }

    /** Mean row, print (plain/CSV per MNM_CSV), sweep exit code. */
    int finish(int decimals)
    {
        table_.addMeanRow("Arith. Mean", decimals);
        table_.print(opts_.csv);
        return sweepExitCode();
    }

  private:
    ExperimentOptions opts_;
    Table table_;
    std::vector<SweepVariant> variants_;
    std::vector<MemSimResult> results_;
};

} // namespace mnm

#endif // MNM_BENCH_HARNESS_HH
