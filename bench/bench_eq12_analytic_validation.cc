/**
 * @file
 * Paper Equations 1 and 2: validate the analytical data-access-time
 * model against simulation. For every app the bench measures the
 * average access time without an MNM and with HMNM4, then recomputes
 * both from the measured per-level miss rates and abort fractions via
 * the equations. The analytic and simulated columns should agree
 * closely (fetch/data path aggregation is the only approximation on the
 * split-L1 machine).
 */

#include "core/presets.hh"
#include "harness.hh"
#include "sim/analytic.hh"

using namespace mnm;

namespace
{

/** Per-level timings/miss-rates aggregated across split structures. */
std::vector<LevelTiming>
levelTimings(const MemSimResult &r, const HierarchyParams &params)
{
    std::vector<LevelTiming> levels(params.levels.size());
    std::vector<double> accesses(params.levels.size(), 0.0);
    std::vector<double> misses(params.levels.size(), 0.0);
    std::vector<double> bypasses(params.levels.size(), 0.0);
    for (const CacheSnapshot &c : r.caches) {
        std::size_t i = c.level - 1;
        accesses[i] += static_cast<double>(c.accesses);
        misses[i] += static_cast<double>(c.misses);
        bypasses[i] += static_cast<double>(c.bypasses);
        levels[i].hit_time = static_cast<double>(
            params.levels[i].data.hit_latency);
        levels[i].miss_time = static_cast<double>(
            params.levels[i].data.missLatency());
    }
    for (std::size_t i = 0; i < levels.size(); ++i) {
        // A bypass is an aborted miss: it would have been probed and
        // missed. Fold it into the miss rate and the abort fraction.
        double would_miss = misses[i] + bypasses[i];
        double would_access = accesses[i] + bypasses[i];
        levels[i].miss_rate = ratio(would_miss, would_access);
        levels[i].abort_fraction = ratio(bypasses[i], would_miss);
    }
    return levels;
}

} // anonymous namespace

int
main()
{
    SweepTableBench bench("eq12_analytic_validation",
                          "Equations 1/2: analytic vs simulated data "
                          "access time [cycles] (baseline and HMNM4)");
    bench.setHeader({"app", "sim (eq1)", "analytic (eq1)", "sim (eq2)",
                     "analytic (eq2)"});

    HierarchyParams params = paperHierarchy(5);
    bench.addVariant("baseline", params);
    bench.addVariant("HMNM4", params, makeHmnmSpec(4));
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &base = bench.at(a, 0);
        const MemSimResult &mnm = bench.at(a, 1);
        // The analytic columns derive from the same cell's measured
        // rates, so a failed cell gaps both of its columns.
        double analytic_base = sweepCell(
            base, analyticDataAccessTime(
                      levelTimings(base, params),
                      static_cast<double>(params.memory_latency)));
        double analytic_mnm = sweepCell(
            mnm, analyticDataAccessTime(
                     levelTimings(mnm, params),
                     static_cast<double>(params.memory_latency)));
        bench.addAppRow(a,
                        {sweepCell(base, base.avgAccessTime()),
                         analytic_base,
                         sweepCell(mnm, mnm.avgAccessTime()),
                         analytic_mnm},
                        2);
    }
    return bench.finish(2);
}
