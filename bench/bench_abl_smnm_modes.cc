/**
 * @file
 * Ablation (DESIGN.md decision 1): SMNM update modes. The default
 * Counting mode maintains per-sum counters from the full
 * placement/replacement feed; SetOnly is the paper's literal circuit
 * (flops set on placement, never cleared). Expected: SetOnly coverage
 * decays towards zero as the presence bits fill up, while Counting
 * holds a steady (if modest) level.
 */

#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("abl_smnm_modes");
    Table table("Ablation: SMNM_13x2 coverage, counting vs literal "
                "set-only circuit [%]");
    table.setHeader({"app", "counting", "set-only"});

    std::vector<SweepVariant> variants = {
        {"counting", paperHierarchy(5),
         makeUniformSpec(SmnmSpec{13, 2, SmnmUpdateMode::Counting})},
        {"set-only", paperHierarchy(5),
         makeUniformSpec(SmnmSpec{13, 2, SmnmUpdateMode::SetOnly})}};
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        std::vector<double> row;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const MemSimResult &r = results[a * variants.size() + v];
            row.push_back(sweepCell(r, 100.0 * r.coverage.coverage()));
        }
        table.addRow(ExperimentOptions::shortName(opts.apps[a]), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return sweepExitCode();
}
