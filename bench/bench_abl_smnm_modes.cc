/**
 * @file
 * Ablation (DESIGN.md decision 1): SMNM update modes. The default
 * Counting mode maintains per-sum counters from the full
 * placement/replacement feed; SetOnly is the paper's literal circuit
 * (flops set on placement, never cleared). Expected: SetOnly coverage
 * decays towards zero as the presence bits fill up, while Counting
 * holds a steady (if modest) level.
 */

#include "core/presets.hh"
#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench(
        "abl_smnm_modes",
        "Ablation: SMNM_13x2 coverage, counting vs literal set-only "
        "circuit [%]");
    bench.addVariant(
        "counting", paperHierarchy(5),
        makeUniformSpec(SmnmSpec{13, 2, SmnmUpdateMode::Counting}));
    bench.addVariant(
        "set-only", paperHierarchy(5),
        makeUniformSpec(SmnmSpec{13, 2, SmnmUpdateMode::SetOnly}));
    bench.useVariantHeader();
    bench.runGrid();
    bench.addMetricRows(2, [](const MemSimResult &r) {
        return 100.0 * r.coverage.coverage();
    });
    return bench.finish(2);
}
