/**
 * @file
 * Ablation (DESIGN.md decision 1): SMNM update modes. The default
 * Counting mode maintains per-sum counters from the full
 * placement/replacement feed; SetOnly is the paper's literal circuit
 * (flops set on placement, never cleared). Expected: SetOnly coverage
 * decays towards zero as the presence bits fill up, while Counting
 * holds a steady (if modest) level.
 */

#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Ablation: SMNM_13x2 coverage, counting vs literal "
                "set-only circuit [%]");
    table.setHeader({"app", "counting", "set-only"});

    for (const std::string &app : opts.apps) {
        std::vector<double> row;
        for (SmnmUpdateMode mode :
             {SmnmUpdateMode::Counting, SmnmUpdateMode::SetOnly}) {
            MnmSpec spec =
                makeUniformSpec(SmnmSpec{13, 2, mode});
            MemSimResult r = runFunctional(paperHierarchy(5), spec, app,
                                           opts.instructions);
            row.push_back(100.0 * r.coverage.coverage());
        }
        table.addRow(ExperimentOptions::shortName(app), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
