/**
 * @file
 * Paper Figure 10: RMNM coverage for four sizes (128_1 through 4096_8).
 * Expected shape: modest average coverage that grows with RMNM size,
 * with high outliers for apps dominated by conflict/capacity misses.
 */

#include "coverage_figure.hh"

int
main()
{
    return mnm::runCoverageFigure("Figure 10: RMNM coverage [%]",
                                  mnm::rmnmFigureConfigs());
}
