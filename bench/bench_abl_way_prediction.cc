/**
 * @file
 * Ablation vs related work: way prediction (Calder & Grunwald; Powell
 * et al. -- paper Section 5) against the serial MNM.
 *
 * Way prediction reduces the energy of *hits* in set-associative caches
 * (read one way when the MRU guess is right); the MNM removes the
 * energy of *misses*. They attack disjoint parts of the ledger, so the
 * bench also reports the combination. Expected shape: way prediction
 * wins for hit-dominated apps, the MNM wins for miss-heavy apps, the
 * combination dominates both -- supporting the paper's positioning that
 * the techniques are complementary, not competing.
 */

#include <limits>

#include "core/presets.hh"
#include "harness.hh"
#include "power/sram_model.hh"
#include "util/bits.hh"

using namespace mnm;

namespace
{

/** Recompute a run's probe energy under way-predicted caches. */
PicoJoules
wayPredictedProbeEnergy(const MemSimResult &r,
                        const HierarchyParams &params)
{
    SramModel sram;
    PicoJoules total = 0.0;
    for (const CacheSnapshot &snap : r.caches) {
        const LevelParams &lvl = params.levels[snap.level - 1];
        const CacheParams &cp =
            (lvl.split && snap.name[0] == 'i') ? lvl.instr : lvl.data;
        CacheGeometry geom;
        geom.capacity_bytes = cp.capacity_bytes;
        geom.block_bytes = cp.block_bytes;
        geom.associativity = cp.associativity;
        std::uint64_t blocks = cp.capacity_bytes / cp.block_bytes;
        std::uint32_t ways = cp.associativity
                                 ? cp.associativity
                                 : static_cast<std::uint32_t>(blocks);
        geom.tag_bits =
            32u - exactLog2(blocks / ways) - exactLog2(cp.block_bytes) +
            2u;
        auto [predicted, mispredict_extra] = sram.wayPredictedRead(geom);
        PowerDelay full = sram.cache(geom);
        // MRU hits: one-way read. Non-MRU hits: one-way read plus the
        // full-width replay. Misses: the predicted way is read in vain,
        // then the miss is known from the (full) tag probe.
        std::uint64_t non_mru_hits = snap.hits - snap.mru_hits;
        total += predicted * static_cast<double>(snap.hits +
                                                 snap.misses) +
                 mispredict_extra * static_cast<double>(non_mru_hits);
        (void)full;
    }
    return total;
}

} // anonymous namespace

int
main()
{
    SweepTableBench bench("abl_way_prediction",
                          "Ablation vs related work: probe-energy "
                          "reduction [%] "
                          "(way prediction / serial HMNM4 / both)");
    bench.setHeader({"app", "waypred", "mnm", "both"});

    HierarchyParams params = paperHierarchy(5);
    MnmSpec serial_spec = makeHmnmSpec(4);
    serial_spec.placement = MnmPlacement::Serial;
    bench.addVariant("baseline", params);
    bench.addVariant("serial HMNM4", params, serial_spec);
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &base = bench.at(a, 0);
        const MemSimResult &mnm = bench.at(a, 1);
        if (base.failed || mnm.failed) {
            // Every column needs both cells; gap the whole row.
            double gap = std::numeric_limits<double>::quiet_NaN();
            bench.addAppRow(a, {gap, gap, gap}, 2);
            continue;
        }

        double base_probe =
            base.energy.probe_hit_pj + base.energy.probe_miss_pj;
        // Way prediction on the baseline machine.
        double wp_probe = wayPredictedProbeEnergy(base, params);
        // MNM on conventional caches (plus its own cost).
        double mnm_probe = mnm.energy.probe_hit_pj +
                           mnm.energy.probe_miss_pj +
                           mnm.energy.mnm_pj;
        // Both: way-predicted caches probing only what the MNM lets
        // through (the MNM's verdict removes whole probes, way
        // prediction cheapens the rest).
        double both_probe =
            wayPredictedProbeEnergy(mnm, params) + mnm.energy.mnm_pj;

        bench.addAppRow(a,
                        {100.0 * (base_probe - wp_probe) / base_probe,
                         100.0 * (base_probe - mnm_probe) / base_probe,
                         100.0 * (base_probe - both_probe) / base_probe},
                        2);
    }
    return bench.finish(2);
}
