/**
 * @file
 * google-benchmark microbenchmarks of the MNM structures themselves:
 * simulator-side lookup and update throughput of each technique and of
 * the full assembled machine. These measure the *simulation* cost (how
 * fast the model runs), complementing the analytical hardware
 * power/delay numbers reported by bench_table3.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "sim/config.hh"
#include "core/cmnm.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "core/rmnm.hh"
#include "core/smnm.hh"
#include "core/tmnm.hh"
#include "util/random.hh"

namespace mnm
{
namespace
{

void
BM_SmnmLookup(benchmark::State &state)
{
    Smnm smnm({static_cast<std::uint32_t>(state.range(0)), 3,
               SmnmUpdateMode::Counting});
    Rng rng(1);
    for (int i = 0; i < 4096; ++i)
        smnm.onPlacement(rng.nextBelow(1 << 20));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(smnm.definitelyMiss(addr));
        addr = (addr + 12345) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_SmnmLookup)->Arg(10)->Arg(20);

void
BM_TmnmLookup(benchmark::State &state)
{
    Tmnm tmnm({static_cast<std::uint32_t>(state.range(0)), 3, 3});
    Rng rng(1);
    for (int i = 0; i < 4096; ++i)
        tmnm.onPlacement(rng.nextBelow(1 << 20));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tmnm.definitelyMiss(addr));
        addr = (addr + 12345) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_TmnmLookup)->Arg(10)->Arg(12);

void
BM_CmnmLookup(benchmark::State &state)
{
    Cmnm cmnm({8, static_cast<std::uint32_t>(state.range(0)), 3,
               CmnmMaskPolicy::Monotone});
    Rng rng(1);
    for (int i = 0; i < 4096; ++i)
        cmnm.onPlacement(rng.nextBelow(1 << 20));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cmnm.definitelyMiss(addr));
        addr = (addr + 12345) & ((1 << 20) - 1);
    }
}
BENCHMARK(BM_CmnmLookup)->Arg(10)->Arg(12);

void
BM_RmnmChurn(benchmark::State &state)
{
    Rmnm rmnm({static_cast<std::uint32_t>(state.range(0)), 8}, 5, 5);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        rmnm.onReplacement(2, addr, 7);
        rmnm.onPlacement(2, addr + (1 << 12), 7);
        benchmark::DoNotOptimize(rmnm.definitelyMiss(2, addr));
        addr += 128;
    }
}
BENCHMARK(BM_RmnmChurn)->Arg(512)->Arg(4096);

void
BM_Hmnm4FullAccess(benchmark::State &state)
{
    CacheHierarchy hierarchy(paperHierarchy(5));
    MnmUnit mnm(makeHmnmSpec(4), hierarchy);
    Rng rng(7);
    for (auto _ : state) {
        Addr addr = 0x40000000ull + (rng.nextBelow(1 << 22) & ~7ull);
        BypassMask mask = mnm.computeBypass(AccessType::Load, addr);
        benchmark::DoNotOptimize(
            hierarchy.access(AccessType::Load, addr, mask));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hmnm4FullAccess);

void
BM_BaselineFullAccess(benchmark::State &state)
{
    CacheHierarchy hierarchy(paperHierarchy(5));
    Rng rng(7);
    for (auto _ : state) {
        Addr addr = 0x40000000ull + (rng.nextBelow(1 << 22) & ~7ull);
        benchmark::DoNotOptimize(
            hierarchy.access(AccessType::Load, addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineFullAccess);

} // anonymous namespace
} // namespace mnm

BENCHMARK_MAIN();
