/**
 * @file
 * Paper Figure 11: SMNM coverage (10x2, 13x2, 15x2, 20x3). Expected
 * shape: the lowest coverage of the four techniques -- the sum hash
 * aliases heavily for large caches -- with outliers where small-cache
 * misses dominate (the paper's apsi case).
 */

#include "coverage_figure.hh"

int
main()
{
    return mnm::runCoverageFigure("Figure 11: SMNM coverage [%]",
                                  mnm::smnmFigureConfigs());
}
