/**
 * @file
 * Paper Table 2: per-application characteristics on the 5-level
 * machine -- execution cycles, L1 data/instruction access counts, and
 * the per-level hit rates of all seven cache structures.
 */

#include "cpu/ooo_core.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("table2_characteristics");
    Table table("Table 2: application characteristics (5-level machine)");
    table.setHeader({"app", "cycles[M]", "dl1 acc[M]", "il1 acc[M]",
                     "dl1 hit%", "dl2 hit%", "il1 hit%", "il2 hit%",
                     "ul3 hit%", "ul4 hit%", "ul5 hit%"});

    // One timing-core run per app; each cell returns its full row.
    // Timing runs are all-or-nothing: a failure aborts the bench with
    // the aggregate error list (unlike runSweep's gap markers).
    ParallelRunner runner(opts.jobs);
    std::vector<std::vector<double>> rows;
    try {
        rows = runner.map<std::vector<double>>(
            opts.apps.size(), [&](std::size_t a) {
                CacheHierarchy hierarchy(paperHierarchy(5));
                OooCore core(paperCpu(5), hierarchy);
                auto workload = makeSpecWorkload(opts.apps[a]);
                CpuRunStats stats =
                    core.run(*workload, opts.instructions);

                auto hit_rate = [&](const char *name) {
                    for (CacheId id = 0; id < hierarchy.numCaches();
                         ++id) {
                        if (hierarchy.cache(id).params().name == name) {
                            return 100.0 * hierarchy.cache(id)
                                               .stats()
                                               .hitRate();
                        }
                    }
                    return 0.0;
                };
                return std::vector<double>{
                    static_cast<double>(stats.cycles) / 1e6,
                    static_cast<double>(stats.loads + stats.stores) /
                        1e6,
                    static_cast<double>(stats.fetch_line_accesses) /
                        1e6,
                    hit_rate("dl1"),
                    hit_rate("dl2"),
                    hit_rate("il1"),
                    hit_rate("il2"),
                    hit_rate("ul3"),
                    hit_rate("ul4"),
                    hit_rate("ul5"),
                };
            });
    } catch (const SweepFailure &e) {
        fatal("%s", e.what());
    }

    for (std::size_t a = 0; a < opts.apps.size(); ++a)
        table.addRow(ExperimentOptions::shortName(opts.apps[a]), rows[a],
                     2);
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
