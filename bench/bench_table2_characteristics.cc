/**
 * @file
 * Paper Table 2: per-application characteristics on the 5-level
 * machine -- execution cycles, L1 data/instruction access counts, and
 * the per-level hit rates of all seven cache structures.
 */

#include "cpu/ooo_core.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Table 2: application characteristics (5-level machine)");
    table.setHeader({"app", "cycles[M]", "dl1 acc[M]", "il1 acc[M]",
                     "dl1 hit%", "dl2 hit%", "il1 hit%", "il2 hit%",
                     "ul3 hit%", "ul4 hit%", "ul5 hit%"});

    for (const std::string &app : opts.apps) {
        CacheHierarchy hierarchy(paperHierarchy(5));
        OooCore core(paperCpu(5), hierarchy);
        auto workload = makeSpecWorkload(app);
        CpuRunStats stats = core.run(*workload, opts.instructions);

        auto hit_rate = [&](const char *name) {
            for (CacheId id = 0; id < hierarchy.numCaches(); ++id) {
                if (hierarchy.cache(id).params().name == name)
                    return 100.0 * hierarchy.cache(id).stats().hitRate();
            }
            return 0.0;
        };
        std::vector<double> row = {
            static_cast<double>(stats.cycles) / 1e6,
            static_cast<double>(stats.loads + stats.stores) / 1e6,
            static_cast<double>(stats.fetch_line_accesses) / 1e6,
            hit_rate("dl1"),
            hit_rate("dl2"),
            hit_rate("il1"),
            hit_rate("il2"),
            hit_rate("ul3"),
            hit_rate("ul4"),
            hit_rate("ul5"),
        };
        table.addRow(ExperimentOptions::shortName(app), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
