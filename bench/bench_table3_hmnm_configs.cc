/**
 * @file
 * Paper Table 3: the four Hybrid MNM compositions, with the structure
 * inventory, storage cost, per-probe energy, and the delay audit the
 * paper asserts: even HMNM4's probe delay fits within the 4 KB L1
 * caches' access (both are 2 cycles at the 1 GHz reference clock).
 */

#include <algorithm>
#include <cstdio>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "sim/config.hh"

using namespace mnm;

int
main()
{
    std::puts("== Table 3: HMNM configurations ==");

    SramModel sram;
    CacheGeometry l1;
    l1.capacity_bytes = 4 * 1024;
    l1.block_bytes = 32;
    l1.associativity = 1;
    Nanoseconds l1_ns = sram.cache(l1).access_ns;
    Cycles l1_cycles = std::max<Cycles>(2, delayToCycles(l1_ns, 1.0));
    std::printf("4KB direct-mapped L1: %.3f ns -> %llu cycles @1GHz\n\n",
                l1_ns, static_cast<unsigned long long>(l1_cycles));

    bool all_fit = true;
    for (int n = 1; n <= 4; ++n) {
        CacheHierarchy hierarchy(paperHierarchy(5));
        MnmUnit mnm(makeHmnmSpec(n), hierarchy);
        std::fputs(mnm.describe().c_str(), stdout);
        Cycles mnm_cycles = delayToCycles(mnm.probeDelayNs(), 1.0);
        bool fits = mnm_cycles <= l1_cycles;
        all_fit = all_fit && fits;
        std::printf("  probe delay: %.3f ns -> %llu cycles @1GHz "
                    "(%s L1's %llu cycles)\n\n",
                    mnm.probeDelayNs(),
                    static_cast<unsigned long long>(mnm_cycles),
                    fits ? "fits within" : "EXCEEDS",
                    static_cast<unsigned long long>(l1_cycles));
    }
    std::printf("delay audit: %s\n\n",
                all_fit ? "PASS (all HMNM configs fit under the L1 "
                          "access, as the paper claims)"
                        : "FAIL");
    return all_fit ? 0 : 1;
}
