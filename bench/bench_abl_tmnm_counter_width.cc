/**
 * @file
 * Ablation: TMNM counter width. The paper fixes 3-bit saturating
 * counters; this bench sweeps 2/3/4-bit counters for TMNM_12x3.
 * Narrower counters saturate sooner (sticky "maybe" cells, lost
 * coverage); wider ones cost storage. Expected: diminishing returns
 * past 3 bits, supporting the paper's choice.
 */

#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Ablation: TMNM_12x3 coverage by counter width [%]");
    table.setHeader({"app", "2-bit", "3-bit", "4-bit"});

    for (const std::string &app : opts.apps) {
        std::vector<double> row;
        for (std::uint32_t bits : {2u, 3u, 4u}) {
            MnmSpec spec = makeUniformSpec(TmnmSpec{12, 3, bits});
            MemSimResult r = runFunctional(paperHierarchy(5), spec, app,
                                           opts.instructions);
            row.push_back(100.0 * r.coverage.coverage());
        }
        table.addRow(ExperimentOptions::shortName(app), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
