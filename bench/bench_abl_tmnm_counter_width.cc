/**
 * @file
 * Ablation: TMNM counter width. The paper fixes 3-bit saturating
 * counters; this bench sweeps 2/3/4-bit counters for TMNM_12x3.
 * Narrower counters saturate sooner (sticky "maybe" cells, lost
 * coverage); wider ones cost storage. Expected: diminishing returns
 * past 3 bits, supporting the paper's choice.
 */

#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("abl_tmnm_counter_width");
    Table table("Ablation: TMNM_12x3 coverage by counter width [%]");
    table.setHeader({"app", "2-bit", "3-bit", "4-bit"});

    std::vector<SweepVariant> variants;
    for (std::uint32_t bits : {2u, 3u, 4u}) {
        variants.push_back({std::to_string(bits) + "-bit",
                            paperHierarchy(5),
                            makeUniformSpec(TmnmSpec{12, 3, bits})});
    }
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        std::vector<double> row;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const MemSimResult &r = results[a * variants.size() + v];
            row.push_back(sweepCell(r, 100.0 * r.coverage.coverage()));
        }
        table.addRow(ExperimentOptions::shortName(opts.apps[a]), row, 2);
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return sweepExitCode();
}
