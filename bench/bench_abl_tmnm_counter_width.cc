/**
 * @file
 * Ablation: TMNM counter width. The paper fixes 3-bit saturating
 * counters; this bench sweeps 2/3/4-bit counters for TMNM_12x3.
 * Narrower counters saturate sooner (sticky "maybe" cells, lost
 * coverage); wider ones cost storage. Expected: diminishing returns
 * past 3 bits, supporting the paper's choice.
 */

#include "core/presets.hh"
#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench(
        "abl_tmnm_counter_width",
        "Ablation: TMNM_12x3 coverage by counter width [%]");
    for (std::uint32_t bits : {2u, 3u, 4u}) {
        bench.addVariant(std::to_string(bits) + "-bit",
                         paperHierarchy(5),
                         makeUniformSpec(TmnmSpec{12, 3, bits}));
    }
    bench.useVariantHeader();
    bench.runGrid();
    bench.addMetricRows(2, [](const MemSimResult &r) {
        return 100.0 * r.coverage.coverage();
    });
    return bench.finish(2);
}
