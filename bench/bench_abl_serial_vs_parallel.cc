/**
 * @file
 * Ablation: MNM placement (paper Figure 1 and the Section 2
 * discussion). For HMNM4, all three placements:
 *   - parallel:    no added latency, MNM energy on every request;
 *   - serial:      +MNM delay on L1 misses, energy only on L1 misses;
 *   - distributed: per-level filters -- +delay at every level reached,
 *                  but only the reached structures consume energy.
 * The bench reports average data access time and the MNM's own energy
 * under each, quantifying the paper's guidance (parallel for
 * performance, serial/distributed for power).
 */

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("abl_serial_vs_parallel");
    Table table("Ablation: HMNM4 placement -- parallel vs serial vs "
                "distributed");
    table.setHeader({"app", "par t[cyc]", "ser t[cyc]", "dist t[cyc]",
                     "par mnm[uJ]", "ser mnm[uJ]", "dist mnm[uJ]"});

    std::vector<SweepVariant> variants;
    for (auto [label, placement] :
         {std::pair{"parallel", MnmPlacement::Parallel},
          std::pair{"serial", MnmPlacement::Serial},
          std::pair{"distributed", MnmPlacement::Distributed}}) {
        MnmSpec spec = makeHmnmSpec(4);
        spec.placement = placement;
        variants.push_back({label, paperHierarchy(5), spec});
    }
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        const MemSimResult *r = &results[a * variants.size()];
        table.addRow(ExperimentOptions::shortName(opts.apps[a]),
                     {sweepCell(r[0], r[0].avgAccessTime()),
                      sweepCell(r[1], r[1].avgAccessTime()),
                      sweepCell(r[2], r[2].avgAccessTime()),
                      sweepCell(r[0], r[0].energy.mnm_pj / 1e6),
                      sweepCell(r[1], r[1].energy.mnm_pj / 1e6),
                      sweepCell(r[2], r[2].energy.mnm_pj / 1e6)},
                     3);
    }
    table.addMeanRow("Arith. Mean", 3);
    table.print(opts.csv);
    return sweepExitCode();
}
