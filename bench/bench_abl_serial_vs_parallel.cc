/**
 * @file
 * Ablation: MNM placement (paper Figure 1 and the Section 2
 * discussion). For HMNM4, all three placements:
 *   - parallel:    no added latency, MNM energy on every request;
 *   - serial:      +MNM delay on L1 misses, energy only on L1 misses;
 *   - distributed: per-level filters -- +delay at every level reached,
 *                  but only the reached structures consume energy.
 * The bench reports average data access time and the MNM's own energy
 * under each, quantifying the paper's guidance (parallel for
 * performance, serial/distributed for power).
 */

#include "core/presets.hh"
#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench("abl_serial_vs_parallel",
                          "Ablation: HMNM4 placement -- parallel vs "
                          "serial vs distributed");
    bench.setHeader({"app", "par t[cyc]", "ser t[cyc]", "dist t[cyc]",
                     "par mnm[uJ]", "ser mnm[uJ]", "dist mnm[uJ]"});

    for (auto [label, placement] :
         {std::pair{"parallel", MnmPlacement::Parallel},
          std::pair{"serial", MnmPlacement::Serial},
          std::pair{"distributed", MnmPlacement::Distributed}}) {
        MnmSpec spec = makeHmnmSpec(4);
        spec.placement = placement;
        bench.addVariant(label, paperHierarchy(5), spec);
    }
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &par = bench.at(a, 0);
        const MemSimResult &ser = bench.at(a, 1);
        const MemSimResult &dist = bench.at(a, 2);
        bench.addAppRow(a,
                        {sweepCell(par, par.avgAccessTime()),
                         sweepCell(ser, ser.avgAccessTime()),
                         sweepCell(dist, dist.avgAccessTime()),
                         sweepCell(par, par.energy.mnm_pj / 1e6),
                         sweepCell(ser, ser.energy.mnm_pj / 1e6),
                         sweepCell(dist, dist.energy.mnm_pj / 1e6)},
                        3);
    }
    return bench.finish(3);
}
