/**
 * @file
 * Ablation: MNM placement (paper Figure 1 and the Section 2
 * discussion). For HMNM4, all three placements:
 *   - parallel:    no added latency, MNM energy on every request;
 *   - serial:      +MNM delay on L1 misses, energy only on L1 misses;
 *   - distributed: per-level filters -- +delay at every level reached,
 *                  but only the reached structures consume energy.
 * The bench reports average data access time and the MNM's own energy
 * under each, quantifying the paper's guidance (parallel for
 * performance, serial/distributed for power).
 */

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Ablation: HMNM4 placement -- parallel vs serial vs "
                "distributed");
    table.setHeader({"app", "par t[cyc]", "ser t[cyc]", "dist t[cyc]",
                     "par mnm[uJ]", "ser mnm[uJ]", "dist mnm[uJ]"});

    for (const std::string &app : opts.apps) {
        std::vector<MemSimResult> results;
        for (MnmPlacement placement :
             {MnmPlacement::Parallel, MnmPlacement::Serial,
              MnmPlacement::Distributed}) {
            MnmSpec spec = makeHmnmSpec(4);
            spec.placement = placement;
            results.push_back(runFunctional(paperHierarchy(5), spec, app,
                                            opts.instructions));
        }
        table.addRow(ExperimentOptions::shortName(app),
                     {results[0].avgAccessTime(),
                      results[1].avgAccessTime(),
                      results[2].avgAccessTime(),
                      results[0].energy.mnm_pj / 1e6,
                      results[1].energy.mnm_pj / 1e6,
                      results[2].energy.mnm_pj / 1e6},
                     3);
    }
    table.addMeanRow("Arith. Mean", 3);
    table.print(opts.csv);
    return 0;
}
