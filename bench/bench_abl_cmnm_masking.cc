/**
 * @file
 * Ablation (DESIGN.md decision 4): CMNM mask policies. Monotone (the
 * default) provably never produces a false "miss". PaperReset
 * implements the paper's literal "reset the other masks" text; the
 * MnmUnit oracle-guards its verdicts and counts the would-be soundness
 * violations, which this bench reports per application.
 */

#include "core/mnm_unit.hh"
#include "util/logging.hh"
#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Ablation: CMNM_4_10 mask policy -- coverage and caught "
                "soundness violations");
    table.setHeader({"app", "monotone cov%", "paper-reset cov%",
                     "violations"});

    for (const std::string &app : opts.apps) {
        MnmSpec monotone = makeUniformSpec(
            CmnmSpec{4, 10, 3, CmnmMaskPolicy::Monotone});
        MnmSpec reset = makeUniformSpec(
            CmnmSpec{4, 10, 3, CmnmMaskPolicy::PaperReset});
        MemSimResult rm = runFunctional(paperHierarchy(5), monotone, app,
                                        opts.instructions);
        MemSimResult rr = runFunctional(paperHierarchy(5), reset, app,
                                        opts.instructions);
        table.addRow(ExperimentOptions::shortName(app),
                     {100.0 * rm.coverage.coverage(),
                      100.0 * rr.coverage.coverage(),
                      static_cast<double>(rr.soundness_violations)},
                     2);
        if (rm.soundness_violations != 0) {
            warn("monotone policy produced violations on %s -- BUG",
                 app.c_str());
        }
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return 0;
}
