/**
 * @file
 * Ablation (DESIGN.md decision 4): CMNM mask policies. Monotone (the
 * default) provably never produces a false "miss". PaperReset
 * implements the paper's literal "reset the other masks" text; the
 * MnmUnit oracle-guards its verdicts and counts the would-be soundness
 * violations, which this bench reports per application.
 */

#include "core/presets.hh"
#include "harness.hh"
#include "util/logging.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench("abl_cmnm_masking",
                          "Ablation: CMNM_4_10 mask policy -- coverage "
                          "and caught soundness violations");
    bench.setHeader({"app", "monotone cov%", "paper-reset cov%",
                     "violations"});

    bench.addVariant(
        "monotone", paperHierarchy(5),
        makeUniformSpec(CmnmSpec{4, 10, 3, CmnmMaskPolicy::Monotone}));
    bench.addVariant(
        "paper-reset", paperHierarchy(5),
        makeUniformSpec(CmnmSpec{4, 10, 3, CmnmMaskPolicy::PaperReset}));
    bench.runGrid();

    for (std::size_t a = 0; a < bench.numApps(); ++a) {
        const MemSimResult &rm = bench.at(a, 0);
        const MemSimResult &rr = bench.at(a, 1);
        bench.addAppRow(
            a,
            {sweepCell(rm, 100.0 * rm.coverage.coverage()),
             sweepCell(rr, 100.0 * rr.coverage.coverage()),
             sweepCell(rr,
                       static_cast<double>(rr.soundness_violations))},
            2);
        if (!rm.failed && rm.soundness_violations != 0) {
            warn("monotone policy produced violations on %s -- BUG",
                 bench.app(a).c_str());
        }
    }
    return bench.finish(2);
}
