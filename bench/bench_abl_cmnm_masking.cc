/**
 * @file
 * Ablation (DESIGN.md decision 4): CMNM mask policies. Monotone (the
 * default) provably never produces a false "miss". PaperReset
 * implements the paper's literal "reset the other masks" text; the
 * MnmUnit oracle-guards its verdicts and counts the would-be soundness
 * violations, which this bench reports per application.
 */

#include "core/mnm_unit.hh"
#include "util/logging.hh"
#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("abl_cmnm_masking");
    Table table("Ablation: CMNM_4_10 mask policy -- coverage and caught "
                "soundness violations");
    table.setHeader({"app", "monotone cov%", "paper-reset cov%",
                     "violations"});

    std::vector<SweepVariant> variants = {
        {"monotone", paperHierarchy(5),
         makeUniformSpec(CmnmSpec{4, 10, 3, CmnmMaskPolicy::Monotone})},
        {"paper-reset", paperHierarchy(5),
         makeUniformSpec(
             CmnmSpec{4, 10, 3, CmnmMaskPolicy::PaperReset})}};
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        const std::string &app = opts.apps[a];
        const MemSimResult &rm = results[a * 2];
        const MemSimResult &rr = results[a * 2 + 1];
        table.addRow(
            ExperimentOptions::shortName(app),
            {sweepCell(rm, 100.0 * rm.coverage.coverage()),
             sweepCell(rr, 100.0 * rr.coverage.coverage()),
             sweepCell(rr,
                       static_cast<double>(rr.soundness_violations))},
            2);
        if (!rm.failed && rm.soundness_violations != 0) {
            warn("monotone policy produced violations on %s -- BUG",
                 app.c_str());
        }
    }
    table.addMeanRow("Arith. Mean", 2);
    table.print(opts.csv);
    return sweepExitCode();
}
