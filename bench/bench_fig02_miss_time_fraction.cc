/**
 * @file
 * Paper Figure 2: fraction of the data access time spent on cache
 * misses, for machines with 2, 3, 5 and 7 cache levels.
 *
 * Expected shape: the fraction grows with the number of levels (each
 * extra level adds probe time ahead of the eventual supplier).
 */

#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    setRunName("fig02_miss_time_fraction");
    Table table("Figure 2: fraction of misses in data access time [%]");
    table.setHeader({"app", "2-level", "3-level", "5-level", "7-level"});

    std::vector<SweepVariant> variants;
    for (int levels : {2, 3, 5, 7}) {
        variants.push_back({std::to_string(levels) + "-level",
                            paperHierarchy(levels), std::nullopt});
    }
    std::vector<MemSimResult> results = runSweep(
        makeGridCells(opts.apps, variants, opts.instructions), opts);

    for (std::size_t a = 0; a < opts.apps.size(); ++a) {
        std::vector<double> row;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const MemSimResult &r = results[a * variants.size() + v];
            row.push_back(sweepCell(r, 100.0 * r.missTimeFraction()));
        }
        table.addRow(ExperimentOptions::shortName(opts.apps[a]), row, 1);
    }
    table.addMeanRow("Arith. Mean", 1);
    table.print(opts.csv);
    return sweepExitCode();
}
