/**
 * @file
 * Paper Figure 2: fraction of the data access time spent on cache
 * misses, for machines with 2, 3, 5 and 7 cache levels.
 *
 * Expected shape: the fraction grows with the number of levels (each
 * extra level adds probe time ahead of the eventual supplier).
 */

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/table.hh"

using namespace mnm;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    Table table("Figure 2: fraction of misses in data access time [%]");
    table.setHeader({"app", "2-level", "3-level", "5-level", "7-level"});

    for (const std::string &app : opts.apps) {
        std::vector<double> row;
        for (int levels : {2, 3, 5, 7}) {
            MemSimResult r = runFunctional(paperHierarchy(levels),
                                           std::nullopt, app,
                                           opts.instructions);
            row.push_back(100.0 * r.missTimeFraction());
        }
        table.addRow(ExperimentOptions::shortName(app), row, 1);
    }
    table.addMeanRow("Arith. Mean", 1);
    table.print(opts.csv);
    return 0;
}
