/**
 * @file
 * Paper Figure 2: fraction of the data access time spent on cache
 * misses, for machines with 2, 3, 5 and 7 cache levels.
 *
 * Expected shape: the fraction grows with the number of levels (each
 * extra level adds probe time ahead of the eventual supplier).
 */

#include "harness.hh"

using namespace mnm;

int
main()
{
    SweepTableBench bench(
        "fig02_miss_time_fraction",
        "Figure 2: fraction of misses in data access time [%]");
    for (int levels : {2, 3, 5, 7}) {
        bench.addVariant(std::to_string(levels) + "-level",
                         paperHierarchy(levels));
    }
    bench.useVariantHeader();
    bench.runGrid();
    bench.addMetricRows(1, [](const MemSimResult &r) {
        return 100.0 * r.missTimeFraction();
    });
    return bench.finish(1);
}
