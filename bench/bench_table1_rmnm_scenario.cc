/**
 * @file
 * Paper Table 1: the RMNM worked scenario, replayed on a real two-level
 * hierarchy with event-by-event narration. The same scenario is locked
 * down by the unit test RmnmTest.PaperTable1Scenario; this binary prints
 * it for inspection.
 */

#include <cstdio>

#include "cache/hierarchy.hh"
#include "core/mnm_unit.hh"
#include "core/presets.hh"
#include "obs/confusion.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"

using namespace mnm;

namespace
{

/** Narrating listener: prints each placement/replacement. */
class Narrator : public CacheEventListener
{
  public:
    Narrator(MnmUnit &mnm, CacheHierarchy &hierarchy)
        : mnm_(mnm), hierarchy_(hierarchy)
    {
    }

    void
    onPlacement(CacheId id, BlockAddr block) override
    {
        std::printf("    pl. 0x%llx into %s\n",
                    static_cast<unsigned long long>(
                        hierarchy_.cache(id).byteAddr(block)),
                    hierarchy_.cache(id).params().name.c_str());
        mnm_.onPlacement(id, block);
    }

    void
    onReplacement(CacheId id, BlockAddr block) override
    {
        std::printf("    repl. 0x%llx from %s -> recorded in RMNM\n",
                    static_cast<unsigned long long>(
                        hierarchy_.cache(id).byteAddr(block)),
                    hierarchy_.cache(id).params().name.c_str());
        mnm_.onReplacement(id, block);
    }

  private:
    MnmUnit &mnm_;
    CacheHierarchy &hierarchy_;
};

} // anonymous namespace

int
main()
{
    initRunTelemetry("table1_rmnm_scenario");
    std::puts("== Table 1: RMNM scenario (2-level hierarchy, "
              "direct-mapped 4-block L1 / 8-block L2) ==");

    HierarchyParams params;
    LevelParams l1;
    l1.data.name = "L1";
    l1.data.capacity_bytes = 4 * 32;
    l1.data.associativity = 1;
    l1.data.block_bytes = 32;
    l1.data.hit_latency = 1;
    LevelParams l2;
    l2.data.name = "L2";
    l2.data.capacity_bytes = 8 * 32;
    l2.data.associativity = 1;
    l2.data.block_bytes = 32;
    l2.data.hit_latency = 4;
    params.levels = {l1, l2};
    params.memory_latency = 50;

    CacheHierarchy hierarchy(params);
    MnmUnit mnm(makeRmnmSpec(128, 1), hierarchy);
    // Interpose the narrator between hierarchy and MNM.
    Narrator narrator(mnm, hierarchy);
    hierarchy.setListener(&narrator);

    DecisionMatrix decisions;
    auto access = [&](Addr addr) {
        BypassMask mask = mnm.computeBypass(AccessType::Load, addr);
        std::printf("  access 0x%llx\n",
                    static_cast<unsigned long long>(addr));
        AccessResult r = hierarchy.access(AccessType::Load, addr, mask);
        decisions.recordAccess(r);
        for (std::uint8_t i = 0; i < r.num_probes; ++i) {
            const ProbeRecord &p = r.probes[i];
            std::printf(
                "    L%u: %s\n", p.level,
                p.bypassed ? "BYPASSED (RMNM identified the miss)"
                           : (p.hit ? "hit" : "miss"));
        }
    };

    // The paper's sequence: conflicting block addresses march through
    // the shared set until the first block is evicted from L2 as well;
    // re-accessing it is then identified as an L2 miss.
    access(0x2f00);
    access(0x2c00);
    access(0x2800);
    access(0x2400);
    std::puts("  -- re-access the first block:");
    access(0x2f00);

    std::printf("soundness violations: %llu (must be 0)\n\n",
                static_cast<unsigned long long>(
                    mnm.soundnessViolations()));

    // Fold the scenario's decision matrix into the run manifest.
    for (std::uint32_t l = 0; l < DecisionMatrix::max_levels; ++l)
        decisions.setForbidden(l, mnm.violationsAtLevel(l));
    decisions.registerInto(globalStats(), "table1.confusion");
    globalStats().addCounter("table1.soundness_violations",
                             mnm.soundnessViolations());
    return 0;
}
