#!/usr/bin/env python3
"""Split a bench_output.txt into per-experiment CSV files.

The bench binaries print aligned tables of the form

    == <title> ==
    app   col1  col2
    -----------------
    gzip  1.0   2.0
    ...

This tool parses every such table and writes one CSV per table into an
output directory, named from a slug of the title -- handy for feeding
gnuplot/matplotlib when regenerating the paper's figures.

usage: tools/extract_results.py bench_output.txt [outdir]
       tools/extract_results.py --stats run.json bench_output.txt [outdir]
       tools/extract_results.py --diff a.json b.json
       tools/extract_results.py --journal checkpoint.jsonl
       tools/extract_results.py --perf [--baseline BENCH_kernel.json] \
                                [--require-same-cells] file...
       tools/extract_results.py --perf --baseline BENCH_kernel.json \
                                --update-baseline [--force] new.json
       tools/extract_results.py --prof run.json...

With --stats, every extracted coverage table is cross-checked against
the MNM_STATS_JSON run manifest: each printed percentage must match the
coverage derived from the manifest's per-level decision confusion
matrix (predicted_miss_actual_miss over all actual misses) to within
rounding of the printed precision. Any mismatch -- or a manifest that
covers none of the printed cells -- is a failure. "<failed>" gap
markers (cells whose simulation crashed or timed out) are skipped and
reported, never treated as mismatches.

With --diff, two run manifests are compared for metric equality while
ignoring the fields that legitimately differ between runs: "meta",
"config.jobs", "config.workers", "config.progress", and the
"metrics.runner" and "metrics.prof" wall-clock subtrees. Used by CI to
prove serial, threaded (MNM_JOBS), and process-pool (MNM_WORKERS)
sweeps fold identical statistics.

With --prof, each input's phase-attribution profile (the metrics.prof
subtree a run records under MNM_PROF=time|hw, or the per-cell "prof"
share blocks in a kernel-bench summary) is printed as per-phase
cycle/share tables: the process-wide totals, then each attributed cell
(sweep cells and bench (config, backend) cells alike). Hardware
columns (instr, llc_miss) print "-" when the run fell back to time
mode. An input without any profile is an error -- it means the run was
made without MNM_PROF.

With --journal, an MNM_CHECKPOINT journal is summarized: schema,
completed-cell count, total journaled instructions, and any torn or
foreign lines (reported, never fatal -- a truncated tail is exactly
what the journal is designed to survive). v2 journals additionally
carry per-record CRC-32 envelopes and the process-pool's operational
records; for those the tool verifies every CRC and summarizes leases
issued, re-issued cells, leased-but-uncommitted cells (the ones a
resuming run re-executes), worker respawns, poisoned cells, and any
corrupt (bit-flipped) records.

With --perf, each input is either a kernel-bench summary (schema
mnm-kernel-bench-v1 or -v2, written by bench_kernel_throughput under
MNM_BENCH_JSON) or an MNM_STATS_JSON run manifest. Summaries print
their per-cell instructions/sec (v2 cells are "config[backend]"); with
--baseline, each cell shared with the committed baseline is compared
and any throughput drop beyond 20% fails the run (CI's Release-build
regression gate). --require-same-cells additionally fails when the
baseline's cell set differs from the run's -- the staleness check CI
runs so a schema or config change cannot quietly dodge the gate.
Manifests print every per-cell metrics.runner.*.instr_per_sec gauge;
manifests from older schema revisions simply have none, which is
reported but never an error. When a gated cell regresses and the run
(and ideally the baseline) carries per-cell "prof" phase shares, the
failure is attributed: the phase whose share of the cell's time moved
most against the baseline is named (or, with a prof-less baseline, the
run's top phases are listed) -- so a ratchet trip ships a pointer at
the guilty stage, not just a ratio.

With --perf --update-baseline, the ratchet: the given summary replaces
the committed baseline file, printing every cell's delta. Lowering any
cell (or dropping one) is refused unless --force is also passed -- the
baseline only moves up by default, so a regression can only be
baselined deliberately.

Truncated or malformed JSON inputs are reported as such with a
non-zero exit; the tool never dies with a traceback on a partial file.
"""

import json
import os
import re
import sys
import zlib

#: Printed tables round to 1 decimal; allow half a ULP of that plus
#: float noise.
TOLERANCE = 0.05 + 1e-9

#: Manifest fields that legitimately differ between comparable runs.
#: metrics.prof is wall-clock-derived phase attribution (obs/
#: phase_profiler), exactly as wall-clocky as metrics.runner.
DIFF_IGNORED = ("meta", "config.jobs", "config.workers",
                "config.progress", "metrics.runner", "metrics.prof")


#: Gap marker printed by util/table.hh for failed sweep cells.
FAILED_CELL = "<failed>"


def load_json(path, what):
    """Parse a JSON document, returning None (with a report on stderr)
    for a missing, truncated, or otherwise malformed file."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as err:
        print(f"cannot read {what} {path}: {err}", file=sys.stderr)
    except json.JSONDecodeError as err:
        print(f"{what} {path} is truncated or malformed "
              f"(line {err.lineno}: {err.msg}); was the run killed "
              f"mid-write?", file=sys.stderr)
    return None


def slugify(title: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_").lower()
    return slug[:80] or "table"


def split_row(line: str):
    # Columns are separated by runs of >= 2 spaces.
    return [cell.strip() for cell in re.split(r"\s{2,}", line.strip())
            if cell.strip()]


def parse_tables(lines):
    """Yield (title, header, rows) for every printed table."""
    i = 0
    while i < len(lines):
        match = re.match(r"^== (.*) ==$", lines[i])
        if not match:
            i += 1
            continue
        title = match.group(1)
        header = None
        rows = []
        i += 1
        while i < len(lines):
            line = lines[i]
            if not line.strip() or line.startswith("== "):
                break
            if re.fullmatch(r"-+", line.strip()):
                i += 1
                continue
            cells = split_row(line)
            if header is None:
                header = cells
            elif len(cells) == len(header):
                rows.append(cells)
            i += 1
        if header and rows:
            yield title, header, rows


def derived_coverage_pct(confusion):
    """Coverage [%] from a per-level confusion subtree, exactly as
    DecisionMatrix::coverage() computes it: identified misses over all
    actual misses, summed across levels."""
    identified = 0
    actual_misses = 0
    for cells in confusion.values():
        pm_am = cells["predicted_miss_actual_miss"]
        identified += pm_am
        actual_misses += pm_am + cells["maybe_actual_miss"]
    return 100.0 * identified / actual_misses if actual_misses else 0.0


def cross_check(tables, manifest):
    """Compare printed coverage cells against the manifest. Returns
    (cells checked, failed-gap cells skipped, mismatch descriptions)."""
    sweep = manifest.get("metrics", {}).get("sweep", {})
    checked = 0
    gaps = 0
    mismatches = []
    for title, header, rows in tables:
        if "coverage" not in title.lower():
            continue
        for row in rows:
            app = row[0]
            for config, printed in zip(header[1:], row[1:]):
                if printed == FAILED_CELL:
                    # A crashed/timed-out cell: the bench printed a gap
                    # and the manifest holds no sweep metrics for it.
                    gaps += 1
                    continue
                entry = sweep.get(config, {}).get(app, {})
                confusion = entry.get("confusion")
                if confusion is None:
                    continue
                want = derived_coverage_pct(confusion)
                got = float(printed)
                checked += 1
                if abs(got - want) > TOLERANCE:
                    mismatches.append(
                        f"{title}: {app}/{config}: printed {got} "
                        f"but manifest derives {want:.6f}")
    return checked, gaps, mismatches


def strip_ignored(manifest):
    doc = json.loads(json.dumps(manifest))  # deep copy
    for dotted in DIFF_IGNORED:
        node = doc
        *parents, leaf = dotted.split(".")
        for segment in parents:
            node = node.get(segment, {})
        node.pop(leaf, None)
    return doc


def diff_values(a, b, path, out):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: only in second manifest")
            elif key not in b:
                out.append(f"{path}.{key}: only in first manifest")
            else:
                diff_values(a[key], b[key], f"{path}.{key}", out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def run_diff(path_a, path_b) -> int:
    a = load_json(path_a, "manifest")
    b = load_json(path_b, "manifest")
    if a is None or b is None:
        return 1
    a = strip_ignored(a)
    b = strip_ignored(b)
    differences = []
    diff_values(a, b, "", differences)
    if differences:
        print(f"{path_a} and {path_b} differ "
              f"(ignoring {', '.join(DIFF_IGNORED)}):", file=sys.stderr)
        for line in differences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"{path_a} and {path_b} are equivalent "
          f"(ignoring {', '.join(DIFF_IGNORED)})")
    return 0


#: Schema tags written by bench_kernel_throughput under MNM_BENCH_JSON.
#: v1 keyed cells by config alone; v2 adds a backend dimension.
KERNEL_BENCH_SCHEMAS = ("mnm-kernel-bench-v1", "mnm-kernel-bench-v2")

#: CI's Release-job gate: a config may lose at most this fraction of
#: its committed-baseline throughput before the run fails.
PERF_REGRESSION_LIMIT = 0.20


def perf_configs(doc):
    """{cell: instr_per_sec} from a kernel-bench summary, skipping
    malformed or non-positive cells rather than dying on them. v1 cells
    are keyed by config name; v2 cells by "config[backend]". The two
    key spaces never collide, so a schema change between a committed
    baseline and a fresh run shows up as fully-disjoint cell sets --
    exactly what --require-same-cells exists to catch."""
    out = {}
    for name, cell in doc.get("configs", {}).items():
        if not isinstance(cell, dict):
            continue
        if doc.get("schema") == "mnm-kernel-bench-v1":
            ips = cell.get("instr_per_sec")
            if isinstance(ips, (int, float)) and ips > 0:
                out[name] = float(ips)
            continue
        for backend, inner in cell.items():
            ips = (inner.get("instr_per_sec")
                   if isinstance(inner, dict) else None)
            if isinstance(ips, (int, float)) and ips > 0:
                out[f"{name}[{backend}]"] = float(ips)
    return out


def manifest_throughput(doc):
    """Flattened per-cell instr_per_sec gauges from a run manifest's
    metrics.runner subtree. Manifests from schema revisions that
    predate the gauge simply yield nothing."""
    rows = []

    def walk(node, path):
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], path + [key])
        elif (path and path[-1] == "instr_per_sec"
              and isinstance(node, (int, float))):
            rows.append((".".join(path[:-1]), float(node)))

    walk(doc.get("metrics", {}).get("runner", {}), [])
    return rows


def perf_prof_shares(doc):
    """{cell: {phase: share}} from a kernel-bench summary's optional
    per-cell "prof" blocks (written when the bench ran under MNM_PROF).
    Cells without a block are simply absent."""
    out = {}
    if doc.get("schema") != "mnm-kernel-bench-v2":
        return out
    for name, cell in doc.get("configs", {}).items():
        if not isinstance(cell, dict):
            continue
        for backend, inner in cell.items():
            prof = (inner.get("prof")
                    if isinstance(inner, dict) else None)
            if isinstance(prof, dict) and prof:
                out[f"{name}[{backend}]"] = {
                    p: float(s) for p, s in prof.items()
                    if isinstance(s, (int, float))}
    return out


def attribute_regression(name, run_prof_shares, base_prof_shares):
    """Attribution lines for one regressed cell: the phase whose share
    moved most vs the baseline, or the run's top phases when the
    baseline has no profile. Empty when the run has none either."""
    shares = run_prof_shares.get(name)
    if not shares:
        return []
    base = base_prof_shares.get(name)
    if base:
        moved = max(set(shares) | set(base),
                    key=lambda p: abs(shares.get(p, 0.0)
                                      - base.get(p, 0.0)))
        before = base.get(moved, 0.0)
        after = shares.get(moved, 0.0)
        return [f"    prof: '{moved}' share moved most: "
                f"{before:.1%} -> {after:.1%} ({after - before:+.1%})"]
    top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
    listed = ", ".join(f"{p} {s:.1%}" for p, s in top)
    return [f"    prof: no baseline shares; this run's top phases: "
            f"{listed}"]


#: Phase order matching obs/phase_profiler.hh's Phase enum; unknown
#: phases sort after these, alphabetically.
PROF_PHASE_ORDER = ("run", "batch_gen", "l1_peek", "verdict",
                    "hier_walk", "update_feed", "cold_account",
                    "feed_drain", "gen_overlap", "lane_descent")


def prof_phase_rows(node):
    """[(phase, counters-dict)] for one attributed entity: the dict
    children of @p node that look like phase leaves (have a numeric
    "cycles"), in enum order."""
    rows = []
    for name, child in node.items():
        if (isinstance(child, dict)
                and isinstance(child.get("cycles"), (int, float))):
            rows.append((name, child))
    order = {p: i for i, p in enumerate(PROF_PHASE_ORDER)}
    rows.sort(key=lambda kv: (order.get(kv[0], len(order)), kv[0]))
    return rows


def print_prof_table(title, rows, hw):
    """One per-phase attribution table. @p hw switches the hardware
    columns (instr, llc_miss) from "-" placeholders to numbers."""
    print(f"  {title}")
    print(f"    {'phase':<14} {'cycles':>16} {'share':>7} "
          f"{'instr':>16} {'llc_miss':>12}")
    for phase, c in rows:
        share = c.get("share", 0.0)
        instr = f"{c['instr']:16.0f}" if hw and "instr" in c else (
            f"{'-':>16}")
        llc = f"{c['llc_miss']:12.0f}" if hw and "llc_miss" in c else (
            f"{'-':>12}")
        print(f"    {phase:<14} {c.get('cycles', 0):16.0f} "
              f"{share:7.1%} {instr} {llc}")


def run_prof(paths) -> int:
    """Print per-phase attribution tables for each input (run manifest
    or kernel-bench summary). An input without a profile fails: asking
    for attribution a run never collected deserves a loud answer."""
    status = 0
    for path in paths:
        doc = load_json(path, "prof input")
        if doc is None:
            return 1
        if doc.get("schema") in KERNEL_BENCH_SCHEMAS:
            cells = perf_prof_shares(doc)
            if not cells:
                print(f"{path}: kernel-bench summary carries no prof "
                      f"blocks (re-run bench_kernel_throughput under "
                      f"MNM_PROF=time or hw)", file=sys.stderr)
                status = 1
                continue
            print(f"{path}: kernel bench, per-cell phase shares")
            for name in sorted(cells):
                listed = "  ".join(
                    f"{p} {s:7.1%}" for p, s in sorted(
                        cells[name].items(), key=lambda kv: -kv[1]))
                print(f"  {name:<28} {listed}")
            continue
        prof = doc.get("metrics", {}).get("prof")
        if not isinstance(prof, dict) or not prof:
            print(f"{path}: no metrics.prof subtree (was the run made "
                  f"with MNM_PROF=time or hw?)", file=sys.stderr)
            status = 1
            continue
        hw = prof.get("mode") == 2
        mode = {1: "time", 2: "hw"}.get(prof.get("mode"), "?")
        line = f"{path}: phase attribution, MNM_PROF={mode}"
        if prof.get("hw_fallback"):
            line += " (hw requested, fell back to time)"
        if isinstance(prof.get("tick_hz"), (int, float)):
            line += f", tick {prof['tick_hz'] / 1e9:.2f} GHz"
        print(line)
        totals = prof_phase_rows(prof)
        if totals:
            print_prof_table("process totals", totals, hw)
        for group in ("cell", "worker"):
            tree = prof.get(group)
            if not isinstance(tree, dict):
                continue
            # cell nests label.app; worker nests w<k> directly.
            for label in sorted(tree):
                node = tree[label]
                rows = prof_phase_rows(node)
                if rows:
                    print_prof_table(f"{group} {label}", rows, hw)
                    continue
                for app in sorted(node):
                    rows = prof_phase_rows(node[app])
                    if rows:
                        print_prof_table(f"{group} {label}.{app}",
                                         rows, hw)
        if not totals:
            print(f"{path}: metrics.prof holds no phase leaves",
                  file=sys.stderr)
            status = 1
    return status


def update_baseline(baseline_path, new_path, force) -> int:
    """The perf ratchet: install @p new_path as the committed baseline
    at @p baseline_path. Prints the per-cell delta. Refuses to LOWER any
    shared cell (or drop cells) without --force -- the baseline only
    ratchets upward; lowering it means accepting a regression, which
    must be a deliberate, visible act."""
    new_doc = load_json(new_path, "new baseline")
    if new_doc is None:
        return 1
    if new_doc.get("schema") not in KERNEL_BENCH_SCHEMAS:
        print(f"{new_path} is not a kernel-bench summary",
              file=sys.stderr)
        return 1
    new_cells = perf_configs(new_doc)
    if not new_cells:
        print(f"{new_path} holds no usable cells", file=sys.stderr)
        return 1

    old_cells = {}
    if os.path.exists(baseline_path):
        old_doc = load_json(baseline_path, "baseline")
        if old_doc is None:
            return 1
        old_cells = perf_configs(old_doc)

    lowered = []
    for name in sorted(set(new_cells) | set(old_cells)):
        if name not in old_cells:
            print(f"  {name:<28} {new_cells[name]:14.0f} instr/sec  "
                  f"(new cell)")
        elif name not in new_cells:
            print(f"  {name:<28} dropped (baseline had "
                  f"{old_cells[name]:.0f} instr/sec)")
            lowered.append(name)
        else:
            ratio = new_cells[name] / old_cells[name]
            print(f"  {name:<28} {old_cells[name]:14.0f} -> "
                  f"{new_cells[name]:14.0f} instr/sec  ({ratio:.2f}x)")
            if ratio < 1.0:
                lowered.append(name)
    if lowered and not force:
        print(f"refusing to lower the baseline for: "
              f"{', '.join(lowered)} (pass --force to accept the "
              f"regression deliberately)", file=sys.stderr)
        return 1

    # The committed baseline carries a "reference" block (recording
    # conditions, provenance) that bench runs do not emit; carry it
    # forward so a ratchet never silently drops the methodology note.
    if "reference" not in new_doc and old_cells:
        reference = old_doc.get("reference")
        if reference is not None:
            new_doc["reference"] = reference
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(new_doc, f, indent=2)
        f.write("\n")
    print(f"baseline {baseline_path} updated from {new_path}"
          + (" (--force)" if lowered else ""))
    return 0


def run_perf(baseline_path, paths, require_same_cells=False) -> int:
    """Print throughput summaries; gate against the baseline if given.
    Returns non-zero on unreadable inputs, a gated regression, or --
    under --require-same-cells -- a baseline whose cell set no longer
    matches what the bench produces (a stale committed baseline)."""
    baseline = None
    baseline_prof = {}
    if baseline_path is not None:
        doc = load_json(baseline_path, "baseline")
        if doc is None:
            return 1
        baseline = perf_configs(doc)
        baseline_prof = perf_prof_shares(doc)
        if not baseline:
            print(f"baseline {baseline_path} holds no usable configs",
                  file=sys.stderr)
            return 1

    status = 0
    for path in paths:
        doc = load_json(path, "perf input")
        if doc is None:
            return 1
        if doc.get("schema") in KERNEL_BENCH_SCHEMAS:
            configs = perf_configs(doc)
            run_prof_shares = perf_prof_shares(doc)
            # Gap-to-floor: every MNM cell as a fraction of the bare
            # hierarchy ("off") cell measured by the same run, so the
            # "NN% of the no-MNM floor" number in the ROADMAP is
            # computed, never hand-derived from two lines of output.
            floor = configs.get("off[n/a]", configs.get("off"))
            print(f"{path}: kernel bench, app {doc.get('app', '?')}, "
                  f"{doc.get('instructions', '?')} instructions/config")
            for name, ips in configs.items():
                line = f"  {name:<28} {ips:14.0f} instr/sec"
                if floor and not name.startswith("off"):
                    line += f"  {ips / floor:6.1%} of floor"
                extra = []
                if baseline is not None and name in baseline:
                    ratio = ips / baseline[name]
                    line += f"  ({ratio:.2f}x of baseline)"
                    if ratio < 1.0 - PERF_REGRESSION_LIMIT:
                        line += "  REGRESSION"
                        status = 1
                        extra = attribute_regression(
                            name, run_prof_shares, baseline_prof)
                elif baseline is not None:
                    line += "  (no baseline entry)"
                print(line)
                for attribution in extra:
                    print(attribution)
            if baseline is not None and require_same_cells and \
                    set(baseline) != set(configs):
                print(f"STALE baseline {baseline_path}: cells "
                      f"{sorted(set(baseline) ^ set(configs))} differ "
                      f"between baseline and this run -- re-measure and "
                      f"commit via --update-baseline", file=sys.stderr)
                status = 1
            if baseline is not None:
                for name in sorted(set(baseline) - set(configs)):
                    # A vanished config is suspicious but not gated
                    # (unless --require-same-cells): baselines may carry
                    # configs a trimmed run skips.
                    print(f"  {name:<28} missing from this run "
                          f"(baseline has it)", file=sys.stderr)
        elif "metrics" in doc:
            rows = manifest_throughput(doc)
            if rows:
                print(f"{path}: {len(rows)} per-cell throughput "
                      f"gauges")
                for cell, ips in rows:
                    print(f"  {cell:<40} {ips:14.0f} instr/sec")
            else:
                print(f"{path}: no per-cell instr_per_sec gauges "
                      f"(manifest predates the field); nothing to "
                      f"print")
        else:
            print(f"{path}: neither a kernel-bench summary nor a run "
                  f"manifest", file=sys.stderr)
            return 1
    if baseline is not None and status:
        print(f"throughput regression beyond "
              f"{PERF_REGRESSION_LIMIT:.0%} of {baseline_path}",
              file=sys.stderr)
    return status


#: Schema tags written by sim/recovery.cc (CheckpointJournal::schema).
#: v1 wrote bare result records; v2 wraps every record in a CRC-32
#: envelope and adds the process-pool's lease/respawn/poison records.
JOURNAL_SCHEMA_V1 = "mnm-checkpoint-v1"
JOURNAL_SCHEMA_V2 = "mnm-checkpoint-v2"

#: The v2 record envelope: {"crc":"<8hex>","rec":{...}}. Group 2 is
#: the exact text the CRC was computed over.
ENVELOPE_RE = re.compile(r'^\{"crc":"([0-9a-f]{8})","rec":(.*)\}$')


def summarize_v1(lines):
    """(entries, counters) from a v1 journal body: bare result records,
    anything else counts as torn."""
    entries = {}
    torn = 0
    for line in lines:
        try:
            record = json.loads(line)
            fingerprint = record["fp"]
            result = record["result"]
            result["instructions"]
        except (json.JSONDecodeError, KeyError, TypeError):
            torn += 1
            continue
        entries[fingerprint] = result
    return entries, {"torn": torn}


def summarize_v2(lines):
    """(entries, counters) from a v2 journal body. Every line must be a
    CRC envelope; the CRC is re-verified over the exact rec text, so a
    single flipped bit lands in "corrupt" rather than replaying a
    damaged result. Operational records (lease/respawn/poison) are
    folded into the counters."""
    entries = {}
    leases = {}
    counters = {"torn": 0, "corrupt": 0, "respawns": 0}
    poisoned = {}
    for line in lines:
        match = ENVELOPE_RE.match(line)
        if not match:
            counters["torn"] += 1
            continue
        crc_text, rec_text = match.groups()
        if f"{zlib.crc32(rec_text.encode('utf-8')) & 0xffffffff:08x}" \
                != crc_text:
            counters["corrupt"] += 1
            continue
        try:
            record = json.loads(rec_text)
            kind = record["type"]
        except (json.JSONDecodeError, KeyError, TypeError):
            counters["torn"] += 1
            continue
        if kind == "result":
            try:
                fingerprint = record["fp"]
                result = record["result"]
                result["instructions"]
            except (KeyError, TypeError):
                counters["torn"] += 1
                continue
            entries[fingerprint] = result
        elif kind == "lease":
            fp = record.get("fp")
            if fp is not None:
                leases[fp] = leases.get(fp, 0) + 1
        elif kind == "respawn":
            counters["respawns"] += 1
        elif kind == "poison":
            fp = record.get("fp")
            if fp is not None:
                poisoned[fp] = record.get("crashes", 0)
        else:
            counters["torn"] += 1
    counters["leases"] = sum(leases.values())
    counters["leased_cells"] = len(leases)
    counters["reissues"] = sum(n - 1 for n in leases.values() if n > 1)
    counters["uncommitted"] = sum(
        1 for fp in leases
        if fp not in entries and fp not in poisoned)
    counters["poisoned"] = len(poisoned)
    return entries, counters


def run_journal(path) -> int:
    """Summarize an MNM_CHECKPOINT journal: completed cells, journaled
    instructions, torn lines -- and, for v2, the lease/respawn/poison
    story of a process-pool run. Mirrors CheckpointJournal::load's
    tolerance -- a torn tail is reported, not fatal."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        print(f"cannot read journal {path}: {err}", file=sys.stderr)
        return 1
    lines = [line for line in lines if line.strip()]
    if not lines:
        print(f"{path}: empty journal (no header, nothing to replay)")
        return 0

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        header = None
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema not in (JOURNAL_SCHEMA_V1, JOURNAL_SCHEMA_V2):
        print(f"{path}: unrecognized header schema {schema!r} "
              f"(expected {JOURNAL_SCHEMA_V1!r} or "
              f"{JOURNAL_SCHEMA_V2!r}); a resuming run would ignore "
              f"this journal and start fresh", file=sys.stderr)
        return 1

    if schema == JOURNAL_SCHEMA_V1:
        entries, counters = summarize_v1(lines[1:])
    else:
        entries, counters = summarize_v2(lines[1:])
    total_instructions = sum(r.get("instructions", 0)
                             for r in entries.values())
    violations = sum(1 for r in entries.values()
                     if r.get("soundness_violations", 0))
    print(f"{path}: schema {schema}, {len(entries)} completed cells, "
          f"{total_instructions} instructions journaled")
    if violations:
        print(f"  {violations} cells recorded soundness violations")
    if schema == JOURNAL_SCHEMA_V2:
        print(f"  {counters['leases']} leases issued over "
              f"{counters['leased_cells']} cells; "
              f"{counters['reissues']} re-issues after worker deaths")
        if counters["uncommitted"]:
            print(f"  {counters['uncommitted']} leased-but-uncommitted "
                  f"cells (a resuming run re-executes exactly these)")
        if counters["respawns"]:
            print(f"  {counters['respawns']} worker respawns")
        if counters["poisoned"]:
            print(f"  {counters['poisoned']} poisoned cells (rendered "
                  f"as {FAILED_CELL}; re-runs skip nothing -- poison "
                  f"records are advisory, the cells simply fail again)")
        if counters["corrupt"]:
            print(f"  {counters['corrupt']} corrupt records (CRC "
                  f"mismatch -- bit rot or a torn write mid-record); "
                  f"a resuming run re-runs those cells")
    if counters["torn"]:
        print(f"  {counters['torn']} torn/foreign lines skipped "
              f"(a resuming run skips them too and re-runs those cells)")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if args[:1] == ["--diff"]:
        if len(args) != 3:
            print(__doc__, file=sys.stderr)
            return 1
        return run_diff(args[1], args[2])
    if args[:1] == ["--journal"]:
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 1
        return run_journal(args[1])
    if args[:1] == ["--prof"]:
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 1
        return run_prof(args[1:])
    if args[:1] == ["--perf"]:
        args = args[1:]
        baseline = None
        update = False
        force = False
        require_same_cells = False
        while args and args[0].startswith("--"):
            if args[0] == "--baseline" and len(args) >= 2:
                baseline = args[1]
                args = args[2:]
            elif args[0] == "--update-baseline":
                update = True
                args = args[1:]
            elif args[0] == "--force":
                force = True
                args = args[1:]
            elif args[0] == "--require-same-cells":
                require_same_cells = True
                args = args[1:]
            else:
                print(__doc__, file=sys.stderr)
                return 1
        if not args or (update and
                        (baseline is None or len(args) != 1)):
            print(__doc__, file=sys.stderr)
            return 1
        if update:
            return update_baseline(baseline, args[0], force)
        return run_perf(baseline, args, require_same_cells)

    stats_path = None
    if args[:1] == ["--stats"]:
        if len(args) < 3:
            print(__doc__, file=sys.stderr)
            return 1
        stats_path = args[1]
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]
    outdir = args[1] if len(args) > 1 else "results"
    os.makedirs(outdir, exist_ok=True)

    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    tables = list(parse_tables(lines))
    written = 0
    for title, header, rows in tables:
        out_path = os.path.join(outdir, slugify(title) + ".csv")
        with open(out_path, "w", encoding="utf-8") as out:
            out.write(",".join(header) + "\n")
            for row in rows:
                out.write(",".join(row) + "\n")
        written += 1
        print(f"wrote {out_path} ({len(rows)} rows)")
    print(f"{written} tables extracted")

    if stats_path is not None:
        manifest = load_json(stats_path, "manifest")
        if manifest is None:
            return 1
        checked, gaps, mismatches = cross_check(tables, manifest)
        for line in mismatches:
            print(f"MISMATCH {line}", file=sys.stderr)
        if mismatches:
            return 1
        if gaps:
            print(f"stats cross-check: {gaps} {FAILED_CELL} gap cells "
                  f"skipped", file=sys.stderr)
        if checked == 0:
            print("stats cross-check matched no table cells -- "
                  "is this a coverage figure with MNM_STATS_JSON set?",
                  file=sys.stderr)
            return 1
        print(f"stats cross-check: {checked} cells match {stats_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
