#!/usr/bin/env python3
"""Split a bench_output.txt into per-experiment CSV files.

The bench binaries print aligned tables of the form

    == <title> ==
    app   col1  col2
    -----------------
    gzip  1.0   2.0
    ...

This tool parses every such table and writes one CSV per table into an
output directory, named from a slug of the title -- handy for feeding
gnuplot/matplotlib when regenerating the paper's figures.

usage: tools/extract_results.py bench_output.txt [outdir]
       tools/extract_results.py --stats run.json bench_output.txt [outdir]
       tools/extract_results.py --diff a.json b.json

With --stats, every extracted coverage table is cross-checked against
the MNM_STATS_JSON run manifest: each printed percentage must match the
coverage derived from the manifest's per-level decision confusion
matrix (predicted_miss_actual_miss over all actual misses) to within
rounding of the printed precision. Any mismatch -- or a manifest that
covers none of the printed cells -- is a failure.

With --diff, two run manifests are compared for metric equality while
ignoring the fields that legitimately differ between runs: "meta",
"config.jobs", "config.progress", and the "metrics.runner" wall-clock
subtree. Used by CI to prove serial and parallel sweeps fold identical
statistics.
"""

import json
import os
import re
import sys

#: Printed tables round to 1 decimal; allow half a ULP of that plus
#: float noise.
TOLERANCE = 0.05 + 1e-9

#: Manifest fields that legitimately differ between comparable runs.
DIFF_IGNORED = ("meta", "config.jobs", "config.progress",
                "metrics.runner")


def slugify(title: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_").lower()
    return slug[:80] or "table"


def split_row(line: str):
    # Columns are separated by runs of >= 2 spaces.
    return [cell.strip() for cell in re.split(r"\s{2,}", line.strip())
            if cell.strip()]


def parse_tables(lines):
    """Yield (title, header, rows) for every printed table."""
    i = 0
    while i < len(lines):
        match = re.match(r"^== (.*) ==$", lines[i])
        if not match:
            i += 1
            continue
        title = match.group(1)
        header = None
        rows = []
        i += 1
        while i < len(lines):
            line = lines[i]
            if not line.strip() or line.startswith("== "):
                break
            if re.fullmatch(r"-+", line.strip()):
                i += 1
                continue
            cells = split_row(line)
            if header is None:
                header = cells
            elif len(cells) == len(header):
                rows.append(cells)
            i += 1
        if header and rows:
            yield title, header, rows


def derived_coverage_pct(confusion):
    """Coverage [%] from a per-level confusion subtree, exactly as
    DecisionMatrix::coverage() computes it: identified misses over all
    actual misses, summed across levels."""
    identified = 0
    actual_misses = 0
    for cells in confusion.values():
        pm_am = cells["predicted_miss_actual_miss"]
        identified += pm_am
        actual_misses += pm_am + cells["maybe_actual_miss"]
    return 100.0 * identified / actual_misses if actual_misses else 0.0


def cross_check(tables, manifest):
    """Compare printed coverage cells against the manifest. Returns
    (cells checked, mismatch descriptions)."""
    sweep = manifest.get("metrics", {}).get("sweep", {})
    checked = 0
    mismatches = []
    for title, header, rows in tables:
        if "coverage" not in title.lower():
            continue
        for row in rows:
            app = row[0]
            for config, printed in zip(header[1:], row[1:]):
                entry = sweep.get(config, {}).get(app, {})
                confusion = entry.get("confusion")
                if confusion is None:
                    continue
                want = derived_coverage_pct(confusion)
                got = float(printed)
                checked += 1
                if abs(got - want) > TOLERANCE:
                    mismatches.append(
                        f"{title}: {app}/{config}: printed {got} "
                        f"but manifest derives {want:.6f}")
    return checked, mismatches


def strip_ignored(manifest):
    doc = json.loads(json.dumps(manifest))  # deep copy
    for dotted in DIFF_IGNORED:
        node = doc
        *parents, leaf = dotted.split(".")
        for segment in parents:
            node = node.get(segment, {})
        node.pop(leaf, None)
    return doc


def diff_values(a, b, path, out):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: only in second manifest")
            elif key not in b:
                out.append(f"{path}.{key}: only in first manifest")
            else:
                diff_values(a[key], b[key], f"{path}.{key}", out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def run_diff(path_a, path_b) -> int:
    with open(path_a, encoding="utf-8") as f:
        a = strip_ignored(json.load(f))
    with open(path_b, encoding="utf-8") as f:
        b = strip_ignored(json.load(f))
    differences = []
    diff_values(a, b, "", differences)
    if differences:
        print(f"{path_a} and {path_b} differ "
              f"(ignoring {', '.join(DIFF_IGNORED)}):", file=sys.stderr)
        for line in differences:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"{path_a} and {path_b} are equivalent "
          f"(ignoring {', '.join(DIFF_IGNORED)})")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if args[:1] == ["--diff"]:
        if len(args) != 3:
            print(__doc__, file=sys.stderr)
            return 1
        return run_diff(args[1], args[2])

    stats_path = None
    if args[:1] == ["--stats"]:
        if len(args) < 3:
            print(__doc__, file=sys.stderr)
            return 1
        stats_path = args[1]
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 1
    path = args[0]
    outdir = args[1] if len(args) > 1 else "results"
    os.makedirs(outdir, exist_ok=True)

    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    tables = list(parse_tables(lines))
    written = 0
    for title, header, rows in tables:
        out_path = os.path.join(outdir, slugify(title) + ".csv")
        with open(out_path, "w", encoding="utf-8") as out:
            out.write(",".join(header) + "\n")
            for row in rows:
                out.write(",".join(row) + "\n")
        written += 1
        print(f"wrote {out_path} ({len(rows)} rows)")
    print(f"{written} tables extracted")

    if stats_path is not None:
        with open(stats_path, encoding="utf-8") as f:
            manifest = json.load(f)
        checked, mismatches = cross_check(tables, manifest)
        for line in mismatches:
            print(f"MISMATCH {line}", file=sys.stderr)
        if mismatches:
            return 1
        if checked == 0:
            print("stats cross-check matched no table cells -- "
                  "is this a coverage figure with MNM_STATS_JSON set?",
                  file=sys.stderr)
            return 1
        print(f"stats cross-check: {checked} cells match {stats_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
