#!/usr/bin/env python3
"""Split a bench_output.txt into per-experiment CSV files.

The bench binaries print aligned tables of the form

    == <title> ==
    app   col1  col2
    -----------------
    gzip  1.0   2.0
    ...

This tool parses every such table and writes one CSV per table into an
output directory, named from a slug of the title -- handy for feeding
gnuplot/matplotlib when regenerating the paper's figures.

usage: tools/extract_results.py bench_output.txt [outdir]
"""

import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title).strip("_").lower()
    return slug[:80] or "table"


def split_row(line: str):
    # Columns are separated by runs of >= 2 spaces.
    return [cell.strip() for cell in re.split(r"\s{2,}", line.strip())
            if cell.strip()]


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    path = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "results"
    os.makedirs(outdir, exist_ok=True)

    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    written = 0
    i = 0
    while i < len(lines):
        match = re.match(r"^== (.*) ==$", lines[i])
        if not match:
            i += 1
            continue
        title = match.group(1)
        header = None
        rows = []
        i += 1
        while i < len(lines):
            line = lines[i]
            if not line.strip() or line.startswith("== "):
                break
            if re.fullmatch(r"-+", line.strip()):
                i += 1
                continue
            cells = split_row(line)
            if header is None:
                header = cells
            elif len(cells) == len(header):
                rows.append(cells)
            i += 1
        if header and rows:
            out_path = os.path.join(outdir, slugify(title) + ".csv")
            with open(out_path, "w", encoding="utf-8") as out:
                out.write(",".join(header) + "\n")
                for row in rows:
                    out.write(",".join(row) + "\n")
            written += 1
            print(f"wrote {out_path} ({len(rows)} rows)")
    print(f"{written} tables extracted")
    return 0


if __name__ == "__main__":
    sys.exit(main())
