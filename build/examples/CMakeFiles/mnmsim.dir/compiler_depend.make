# Empty compiler generated dependencies file for mnmsim.
# This may be replaced when dependencies are built.
