file(REMOVE_RECURSE
  "CMakeFiles/mnmsim.dir/mnmsim.cpp.o"
  "CMakeFiles/mnmsim.dir/mnmsim.cpp.o.d"
  "mnmsim"
  "mnmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
