# Empty compiler generated dependencies file for scheduler_hints.
# This may be replaced when dependencies are built.
