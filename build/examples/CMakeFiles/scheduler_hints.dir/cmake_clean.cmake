file(REMOVE_RECURSE
  "CMakeFiles/scheduler_hints.dir/scheduler_hints.cpp.o"
  "CMakeFiles/scheduler_hints.dir/scheduler_hints.cpp.o.d"
  "scheduler_hints"
  "scheduler_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
