file(REMOVE_RECURSE
  "CMakeFiles/deep_hierarchy_test.dir/deep_hierarchy_test.cc.o"
  "CMakeFiles/deep_hierarchy_test.dir/deep_hierarchy_test.cc.o.d"
  "deep_hierarchy_test"
  "deep_hierarchy_test.pdb"
  "deep_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
