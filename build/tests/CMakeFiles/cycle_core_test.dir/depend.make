# Empty dependencies file for cycle_core_test.
# This may be replaced when dependencies are built.
