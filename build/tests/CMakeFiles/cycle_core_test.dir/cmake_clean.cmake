file(REMOVE_RECURSE
  "CMakeFiles/cycle_core_test.dir/cycle_core_test.cc.o"
  "CMakeFiles/cycle_core_test.dir/cycle_core_test.cc.o.d"
  "cycle_core_test"
  "cycle_core_test.pdb"
  "cycle_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
