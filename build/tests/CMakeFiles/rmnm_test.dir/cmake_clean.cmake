file(REMOVE_RECURSE
  "CMakeFiles/rmnm_test.dir/rmnm_test.cc.o"
  "CMakeFiles/rmnm_test.dir/rmnm_test.cc.o.d"
  "rmnm_test"
  "rmnm_test.pdb"
  "rmnm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmnm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
