# Empty compiler generated dependencies file for rmnm_test.
# This may be replaced when dependencies are built.
