file(REMOVE_RECURSE
  "CMakeFiles/memory_sim_test.dir/memory_sim_test.cc.o"
  "CMakeFiles/memory_sim_test.dir/memory_sim_test.cc.o.d"
  "memory_sim_test"
  "memory_sim_test.pdb"
  "memory_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
