# Empty compiler generated dependencies file for tmnm_test.
# This may be replaced when dependencies are built.
