file(REMOVE_RECURSE
  "CMakeFiles/tmnm_test.dir/tmnm_test.cc.o"
  "CMakeFiles/tmnm_test.dir/tmnm_test.cc.o.d"
  "tmnm_test"
  "tmnm_test.pdb"
  "tmnm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmnm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
