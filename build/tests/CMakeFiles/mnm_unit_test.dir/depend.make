# Empty dependencies file for mnm_unit_test.
# This may be replaced when dependencies are built.
