file(REMOVE_RECURSE
  "CMakeFiles/mnm_unit_test.dir/mnm_unit_test.cc.o"
  "CMakeFiles/mnm_unit_test.dir/mnm_unit_test.cc.o.d"
  "mnm_unit_test"
  "mnm_unit_test.pdb"
  "mnm_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
