file(REMOVE_RECURSE
  "CMakeFiles/cmnm_test.dir/cmnm_test.cc.o"
  "CMakeFiles/cmnm_test.dir/cmnm_test.cc.o.d"
  "cmnm_test"
  "cmnm_test.pdb"
  "cmnm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmnm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
