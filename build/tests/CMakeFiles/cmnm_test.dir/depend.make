# Empty dependencies file for cmnm_test.
# This may be replaced when dependencies are built.
