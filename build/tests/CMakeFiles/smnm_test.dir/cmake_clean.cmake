file(REMOVE_RECURSE
  "CMakeFiles/smnm_test.dir/smnm_test.cc.o"
  "CMakeFiles/smnm_test.dir/smnm_test.cc.o.d"
  "smnm_test"
  "smnm_test.pdb"
  "smnm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smnm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
