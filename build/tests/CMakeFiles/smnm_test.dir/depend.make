# Empty dependencies file for smnm_test.
# This may be replaced when dependencies are built.
