# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/rmnm_test[1]_include.cmake")
include("/root/repo/build/tests/smnm_test[1]_include.cmake")
include("/root/repo/build/tests/tmnm_test[1]_include.cmake")
include("/root/repo/build/tests/cmnm_test[1]_include.cmake")
include("/root/repo/build/tests/mnm_unit_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/memory_sim_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/reference_model_test[1]_include.cmake")
include("/root/repo/build/tests/cycle_core_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_property_test[1]_include.cmake")
include("/root/repo/build/tests/api_surface_test[1]_include.cmake")
include("/root/repo/build/tests/deep_hierarchy_test[1]_include.cmake")
