file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cpu_models.dir/bench_abl_cpu_models.cc.o"
  "CMakeFiles/bench_abl_cpu_models.dir/bench_abl_cpu_models.cc.o.d"
  "bench_abl_cpu_models"
  "bench_abl_cpu_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cpu_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
