# Empty dependencies file for bench_abl_cpu_models.
# This may be replaced when dependencies are built.
