# Empty compiler generated dependencies file for bench_fig11_smnm_coverage.
# This may be replaced when dependencies are built.
