# Empty compiler generated dependencies file for bench_fig14_hmnm_coverage.
# This may be replaced when dependencies are built.
