# Empty compiler generated dependencies file for bench_fig02_miss_time_fraction.
# This may be replaced when dependencies are built.
