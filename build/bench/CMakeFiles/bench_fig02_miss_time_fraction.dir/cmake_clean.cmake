file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_miss_time_fraction.dir/bench_fig02_miss_time_fraction.cc.o"
  "CMakeFiles/bench_fig02_miss_time_fraction.dir/bench_fig02_miss_time_fraction.cc.o.d"
  "bench_fig02_miss_time_fraction"
  "bench_fig02_miss_time_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_miss_time_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
