# Empty compiler generated dependencies file for bench_fig15_exec_reduction.
# This may be replaced when dependencies are built.
