# Empty compiler generated dependencies file for bench_abl_inclusion.
# This may be replaced when dependencies are built.
