file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_inclusion.dir/bench_abl_inclusion.cc.o"
  "CMakeFiles/bench_abl_inclusion.dir/bench_abl_inclusion.cc.o.d"
  "bench_abl_inclusion"
  "bench_abl_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
