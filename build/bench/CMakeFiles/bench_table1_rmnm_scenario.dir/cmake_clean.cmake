file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rmnm_scenario.dir/bench_table1_rmnm_scenario.cc.o"
  "CMakeFiles/bench_table1_rmnm_scenario.dir/bench_table1_rmnm_scenario.cc.o.d"
  "bench_table1_rmnm_scenario"
  "bench_table1_rmnm_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rmnm_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
