# Empty compiler generated dependencies file for bench_table1_rmnm_scenario.
# This may be replaced when dependencies are built.
