# Empty compiler generated dependencies file for bench_abl_way_prediction.
# This may be replaced when dependencies are built.
