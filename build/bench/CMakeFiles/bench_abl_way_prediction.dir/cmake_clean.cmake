file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_way_prediction.dir/bench_abl_way_prediction.cc.o"
  "CMakeFiles/bench_abl_way_prediction.dir/bench_abl_way_prediction.cc.o.d"
  "bench_abl_way_prediction"
  "bench_abl_way_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_way_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
