file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cmnm_masking.dir/bench_abl_cmnm_masking.cc.o"
  "CMakeFiles/bench_abl_cmnm_masking.dir/bench_abl_cmnm_masking.cc.o.d"
  "bench_abl_cmnm_masking"
  "bench_abl_cmnm_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cmnm_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
