# Empty dependencies file for bench_abl_cmnm_masking.
# This may be replaced when dependencies are built.
