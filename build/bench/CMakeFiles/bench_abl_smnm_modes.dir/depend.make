# Empty dependencies file for bench_abl_smnm_modes.
# This may be replaced when dependencies are built.
