file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_smnm_modes.dir/bench_abl_smnm_modes.cc.o"
  "CMakeFiles/bench_abl_smnm_modes.dir/bench_abl_smnm_modes.cc.o.d"
  "bench_abl_smnm_modes"
  "bench_abl_smnm_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_smnm_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
