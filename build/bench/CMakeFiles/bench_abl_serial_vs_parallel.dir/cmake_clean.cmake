file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_serial_vs_parallel.dir/bench_abl_serial_vs_parallel.cc.o"
  "CMakeFiles/bench_abl_serial_vs_parallel.dir/bench_abl_serial_vs_parallel.cc.o.d"
  "bench_abl_serial_vs_parallel"
  "bench_abl_serial_vs_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_serial_vs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
