# Empty dependencies file for bench_abl_serial_vs_parallel.
# This may be replaced when dependencies are built.
