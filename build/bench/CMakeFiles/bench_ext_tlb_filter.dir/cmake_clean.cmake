file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tlb_filter.dir/bench_ext_tlb_filter.cc.o"
  "CMakeFiles/bench_ext_tlb_filter.dir/bench_ext_tlb_filter.cc.o.d"
  "bench_ext_tlb_filter"
  "bench_ext_tlb_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tlb_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
