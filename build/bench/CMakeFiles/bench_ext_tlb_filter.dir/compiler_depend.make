# Empty compiler generated dependencies file for bench_ext_tlb_filter.
# This may be replaced when dependencies are built.
