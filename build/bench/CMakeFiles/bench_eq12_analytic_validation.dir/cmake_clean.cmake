file(REMOVE_RECURSE
  "CMakeFiles/bench_eq12_analytic_validation.dir/bench_eq12_analytic_validation.cc.o"
  "CMakeFiles/bench_eq12_analytic_validation.dir/bench_eq12_analytic_validation.cc.o.d"
  "bench_eq12_analytic_validation"
  "bench_eq12_analytic_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq12_analytic_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
