# Empty dependencies file for bench_table2_characteristics.
# This may be replaced when dependencies are built.
