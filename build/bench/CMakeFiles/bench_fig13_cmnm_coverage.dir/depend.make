# Empty dependencies file for bench_fig13_cmnm_coverage.
# This may be replaced when dependencies are built.
