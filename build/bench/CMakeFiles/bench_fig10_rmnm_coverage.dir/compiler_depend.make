# Empty compiler generated dependencies file for bench_fig10_rmnm_coverage.
# This may be replaced when dependencies are built.
