
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03_miss_power_fraction.cc" "bench/CMakeFiles/bench_fig03_miss_power_fraction.dir/bench_fig03_miss_power_fraction.cc.o" "gcc" "bench/CMakeFiles/bench_fig03_miss_power_fraction.dir/bench_fig03_miss_power_fraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mnm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mnm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mnm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mnm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mnm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mnm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
