# Empty dependencies file for bench_fig03_miss_power_fraction.
# This may be replaced when dependencies are built.
