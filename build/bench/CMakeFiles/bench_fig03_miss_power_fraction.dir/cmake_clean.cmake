file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_miss_power_fraction.dir/bench_fig03_miss_power_fraction.cc.o"
  "CMakeFiles/bench_fig03_miss_power_fraction.dir/bench_fig03_miss_power_fraction.cc.o.d"
  "bench_fig03_miss_power_fraction"
  "bench_fig03_miss_power_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_miss_power_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
