# Empty compiler generated dependencies file for bench_abl_tmnm_counter_width.
# This may be replaced when dependencies are built.
