file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tmnm_counter_width.dir/bench_abl_tmnm_counter_width.cc.o"
  "CMakeFiles/bench_abl_tmnm_counter_width.dir/bench_abl_tmnm_counter_width.cc.o.d"
  "bench_abl_tmnm_counter_width"
  "bench_abl_tmnm_counter_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tmnm_counter_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
