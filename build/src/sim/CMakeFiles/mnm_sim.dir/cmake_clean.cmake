file(REMOVE_RECURSE
  "CMakeFiles/mnm_sim.dir/analytic.cc.o"
  "CMakeFiles/mnm_sim.dir/analytic.cc.o.d"
  "CMakeFiles/mnm_sim.dir/config.cc.o"
  "CMakeFiles/mnm_sim.dir/config.cc.o.d"
  "CMakeFiles/mnm_sim.dir/experiment.cc.o"
  "CMakeFiles/mnm_sim.dir/experiment.cc.o.d"
  "CMakeFiles/mnm_sim.dir/memory_sim.cc.o"
  "CMakeFiles/mnm_sim.dir/memory_sim.cc.o.d"
  "CMakeFiles/mnm_sim.dir/sampling.cc.o"
  "CMakeFiles/mnm_sim.dir/sampling.cc.o.d"
  "libmnm_sim.a"
  "libmnm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
