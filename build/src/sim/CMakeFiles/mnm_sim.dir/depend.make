# Empty dependencies file for mnm_sim.
# This may be replaced when dependencies are built.
