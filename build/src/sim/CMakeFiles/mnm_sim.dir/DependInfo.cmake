
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic.cc" "src/sim/CMakeFiles/mnm_sim.dir/analytic.cc.o" "gcc" "src/sim/CMakeFiles/mnm_sim.dir/analytic.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/mnm_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/mnm_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/mnm_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/mnm_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/memory_sim.cc" "src/sim/CMakeFiles/mnm_sim.dir/memory_sim.cc.o" "gcc" "src/sim/CMakeFiles/mnm_sim.dir/memory_sim.cc.o.d"
  "/root/repo/src/sim/sampling.cc" "src/sim/CMakeFiles/mnm_sim.dir/sampling.cc.o" "gcc" "src/sim/CMakeFiles/mnm_sim.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mnm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mnm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mnm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mnm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
