file(REMOVE_RECURSE
  "libmnm_sim.a"
)
