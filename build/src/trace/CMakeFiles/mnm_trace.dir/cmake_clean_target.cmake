file(REMOVE_RECURSE
  "libmnm_trace.a"
)
