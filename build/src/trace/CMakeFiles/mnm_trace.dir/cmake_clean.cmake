file(REMOVE_RECURSE
  "CMakeFiles/mnm_trace.dir/spec2000.cc.o"
  "CMakeFiles/mnm_trace.dir/spec2000.cc.o.d"
  "CMakeFiles/mnm_trace.dir/synthetic.cc.o"
  "CMakeFiles/mnm_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/mnm_trace.dir/trace_io.cc.o"
  "CMakeFiles/mnm_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/mnm_trace.dir/workload.cc.o"
  "CMakeFiles/mnm_trace.dir/workload.cc.o.d"
  "libmnm_trace.a"
  "libmnm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
