# Empty compiler generated dependencies file for mnm_trace.
# This may be replaced when dependencies are built.
