# Empty compiler generated dependencies file for mnm_power.
# This may be replaced when dependencies are built.
