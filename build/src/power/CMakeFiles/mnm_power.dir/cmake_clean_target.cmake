file(REMOVE_RECURSE
  "libmnm_power.a"
)
