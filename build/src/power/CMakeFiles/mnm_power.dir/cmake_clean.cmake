file(REMOVE_RECURSE
  "CMakeFiles/mnm_power.dir/checker_model.cc.o"
  "CMakeFiles/mnm_power.dir/checker_model.cc.o.d"
  "CMakeFiles/mnm_power.dir/sram_model.cc.o"
  "CMakeFiles/mnm_power.dir/sram_model.cc.o.d"
  "libmnm_power.a"
  "libmnm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
