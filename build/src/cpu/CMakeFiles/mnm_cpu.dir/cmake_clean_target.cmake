file(REMOVE_RECURSE
  "libmnm_cpu.a"
)
