file(REMOVE_RECURSE
  "CMakeFiles/mnm_cpu.dir/cycle_core.cc.o"
  "CMakeFiles/mnm_cpu.dir/cycle_core.cc.o.d"
  "CMakeFiles/mnm_cpu.dir/ooo_core.cc.o"
  "CMakeFiles/mnm_cpu.dir/ooo_core.cc.o.d"
  "libmnm_cpu.a"
  "libmnm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
