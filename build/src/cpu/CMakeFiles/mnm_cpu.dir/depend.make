# Empty dependencies file for mnm_cpu.
# This may be replaced when dependencies are built.
