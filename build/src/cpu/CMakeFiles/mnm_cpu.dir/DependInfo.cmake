
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cycle_core.cc" "src/cpu/CMakeFiles/mnm_cpu.dir/cycle_core.cc.o" "gcc" "src/cpu/CMakeFiles/mnm_cpu.dir/cycle_core.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/cpu/CMakeFiles/mnm_cpu.dir/ooo_core.cc.o" "gcc" "src/cpu/CMakeFiles/mnm_cpu.dir/ooo_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mnm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mnm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mnm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mnm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
