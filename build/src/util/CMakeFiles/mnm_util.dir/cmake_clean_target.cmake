file(REMOVE_RECURSE
  "libmnm_util.a"
)
