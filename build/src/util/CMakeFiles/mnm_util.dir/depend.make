# Empty dependencies file for mnm_util.
# This may be replaced when dependencies are built.
