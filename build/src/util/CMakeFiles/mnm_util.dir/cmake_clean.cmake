file(REMOVE_RECURSE
  "CMakeFiles/mnm_util.dir/logging.cc.o"
  "CMakeFiles/mnm_util.dir/logging.cc.o.d"
  "CMakeFiles/mnm_util.dir/random.cc.o"
  "CMakeFiles/mnm_util.dir/random.cc.o.d"
  "CMakeFiles/mnm_util.dir/stats.cc.o"
  "CMakeFiles/mnm_util.dir/stats.cc.o.d"
  "CMakeFiles/mnm_util.dir/table.cc.o"
  "CMakeFiles/mnm_util.dir/table.cc.o.d"
  "libmnm_util.a"
  "libmnm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
