# Empty compiler generated dependencies file for mnm_core.
# This may be replaced when dependencies are built.
