
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cmnm.cc" "src/core/CMakeFiles/mnm_core.dir/cmnm.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/cmnm.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/core/CMakeFiles/mnm_core.dir/coverage.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/coverage.cc.o.d"
  "/root/repo/src/core/mnm_unit.cc" "src/core/CMakeFiles/mnm_core.dir/mnm_unit.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/mnm_unit.cc.o.d"
  "/root/repo/src/core/presets.cc" "src/core/CMakeFiles/mnm_core.dir/presets.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/presets.cc.o.d"
  "/root/repo/src/core/rmnm.cc" "src/core/CMakeFiles/mnm_core.dir/rmnm.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/rmnm.cc.o.d"
  "/root/repo/src/core/smnm.cc" "src/core/CMakeFiles/mnm_core.dir/smnm.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/smnm.cc.o.d"
  "/root/repo/src/core/tlb_filter.cc" "src/core/CMakeFiles/mnm_core.dir/tlb_filter.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/tlb_filter.cc.o.d"
  "/root/repo/src/core/tmnm.cc" "src/core/CMakeFiles/mnm_core.dir/tmnm.cc.o" "gcc" "src/core/CMakeFiles/mnm_core.dir/tmnm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mnm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mnm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mnm_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
