file(REMOVE_RECURSE
  "libmnm_core.a"
)
