file(REMOVE_RECURSE
  "CMakeFiles/mnm_core.dir/cmnm.cc.o"
  "CMakeFiles/mnm_core.dir/cmnm.cc.o.d"
  "CMakeFiles/mnm_core.dir/coverage.cc.o"
  "CMakeFiles/mnm_core.dir/coverage.cc.o.d"
  "CMakeFiles/mnm_core.dir/mnm_unit.cc.o"
  "CMakeFiles/mnm_core.dir/mnm_unit.cc.o.d"
  "CMakeFiles/mnm_core.dir/presets.cc.o"
  "CMakeFiles/mnm_core.dir/presets.cc.o.d"
  "CMakeFiles/mnm_core.dir/rmnm.cc.o"
  "CMakeFiles/mnm_core.dir/rmnm.cc.o.d"
  "CMakeFiles/mnm_core.dir/smnm.cc.o"
  "CMakeFiles/mnm_core.dir/smnm.cc.o.d"
  "CMakeFiles/mnm_core.dir/tlb_filter.cc.o"
  "CMakeFiles/mnm_core.dir/tlb_filter.cc.o.d"
  "CMakeFiles/mnm_core.dir/tmnm.cc.o"
  "CMakeFiles/mnm_core.dir/tmnm.cc.o.d"
  "libmnm_core.a"
  "libmnm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
