file(REMOVE_RECURSE
  "libmnm_cache.a"
)
