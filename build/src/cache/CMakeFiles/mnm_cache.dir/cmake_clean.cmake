file(REMOVE_RECURSE
  "CMakeFiles/mnm_cache.dir/cache.cc.o"
  "CMakeFiles/mnm_cache.dir/cache.cc.o.d"
  "CMakeFiles/mnm_cache.dir/hierarchy.cc.o"
  "CMakeFiles/mnm_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/mnm_cache.dir/tlb.cc.o"
  "CMakeFiles/mnm_cache.dir/tlb.cc.o.d"
  "libmnm_cache.a"
  "libmnm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
