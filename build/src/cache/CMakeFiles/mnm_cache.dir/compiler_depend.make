# Empty compiler generated dependencies file for mnm_cache.
# This may be replaced when dependencies are built.
