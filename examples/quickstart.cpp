/**
 * @file
 * Quickstart: build the paper's 5-level machine, attach a Hybrid MNM,
 * stream a SPEC2000-like workload through it, and print what the MNM
 * did -- in about thirty lines of user code.
 *
 *   ./quickstart [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"

using namespace mnm;

int
main(int argc, char **argv)
{
    initRunTelemetry("quickstart");
    std::string app = argc > 1 ? argv[1] : "181.mcf";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;

    // 1. The machine: the paper's 5-level hierarchy (7 cache
    //    structures) shielded by the strongest hybrid MNM.
    MemorySimulator sim(paperHierarchy(5), makeHmnmSpec(4));
    std::printf("machine:\n%s\n", sim.hierarchy().describe().c_str());
    std::printf("mnm:\n%s\n", sim.mnm()->describe().c_str());

    // 2. The workload: a synthetic SPEC2000-like generator.
    auto workload = makeSpecWorkload(app);
    std::printf("running %llu instructions of %s...\n\n",
                static_cast<unsigned long long>(instructions),
                app.c_str());

    // 3. Run and report.
    MemSimResult r = sim.run(*workload, instructions);
    std::printf("requests:            %llu (%llu data, %llu fetch)\n",
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.data_requests),
                static_cast<unsigned long long>(r.fetch_requests));
    std::printf("avg data access:     %.2f cycles\n", r.avgAccessTime());
    std::printf("miss-time fraction:  %.1f%%\n",
                100.0 * r.missTimeFraction());
    std::printf("MNM coverage:        %.1f%% of bypassable misses "
                "(%llu bypasses)\n",
                100.0 * r.coverage.coverage(),
                static_cast<unsigned long long>(
                    r.coverage.identified()));
    std::printf("cache energy:        %.1f uJ (%.1f%% on misses)\n",
                r.energy.cacheTotal() / 1e6,
                100.0 * r.energy.missFraction());
    std::printf("MNM energy:          %.1f uJ\n", r.energy.mnm_pj / 1e6);
    std::printf("soundness check:     %llu violations (always 0 for "
                "the default configurations)\n",
                static_cast<unsigned long long>(
                    r.soundness_violations));

    std::puts("\nper-cache view:");
    for (const CacheSnapshot &c : r.caches) {
        std::printf("  %-4s L%u  %9llu probes  %6.2f%% hit  %9llu "
                    "bypassed\n",
                    c.name.c_str(), c.level,
                    static_cast<unsigned long long>(c.accesses),
                    100.0 * c.hit_rate,
                    static_cast<unsigned long long>(c.bypasses));
    }
    return 0;
}
