/**
 * @file
 * Power study: where does the cache energy go, and what does a serial
 * MNM buy back? Reproduces the paper's Section 4.4 methodology for one
 * workload with a full breakdown: per-bucket dynamic energy without and
 * with each headline MNM configuration.
 *
 *   ./power_study [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "core/presets.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace mnm;

namespace
{

MemSimResult
runOnce(const std::string &app, std::uint64_t instructions,
        const std::optional<MnmSpec> &spec)
{
    MemorySimulator sim(paperHierarchy(5), spec);
    auto workload = makeSpecWorkload(app);
    sim.run(*workload, instructions / 10);
    return sim.run(*workload, instructions);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string app = argc > 1 ? argv[1] : "181.mcf";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

    MemSimResult base = runOnce(app, instructions, std::nullopt);

    Table table("Serial-MNM energy breakdown for " + app + " [uJ]");
    table.setHeader({"config", "hit probes", "miss probes", "fills",
                     "mnm", "total", "saved%"});
    auto add = [&](const std::string &label, const MemSimResult &r) {
        table.addRow(label,
                     {r.energy.probe_hit_pj / 1e6,
                      r.energy.probe_miss_pj / 1e6,
                      r.energy.fill_pj / 1e6, r.energy.mnm_pj / 1e6,
                      r.energy.total() / 1e6,
                      100.0 * (base.energy.total() - r.energy.total()) /
                          base.energy.total()},
                     2);
    };
    add("baseline", base);
    for (const std::string &config : headlineConfigs()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Serial;
        add(config, runOnce(app, instructions, spec));
    }
    table.print();

    std::puts("Notes: 'miss probes' is the waste the MNM attacks; "
              "'mnm' is what it costs. Perfect is the zero-cost oracle "
              "bound (paper Section 4.4).");
    return 0;
}
