/**
 * @file
 * Power study: where does the cache energy go, and what does a serial
 * MNM buy back? Reproduces the paper's Section 4.4 methodology for one
 * workload with a full breakdown: per-bucket dynamic energy without and
 * with each headline MNM configuration.
 *
 *   ./power_study [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace mnm;

int
main(int argc, char **argv)
{
    initRunTelemetry("power_study");
    std::string app = argc > 1 ? argv[1] : "181.mcf";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

    // Baseline plus every headline config as one parallel sweep.
    std::vector<SweepCell> cells = {
        {app, paperHierarchy(5), std::nullopt, instructions,
         "baseline"}};
    for (const std::string &config : headlineConfigs()) {
        MnmSpec spec = mnmSpecByName(config);
        spec.placement = MnmPlacement::Serial;
        cells.push_back(
            {app, paperHierarchy(5), spec, instructions, config});
    }
    // App and budget come from argv; execution knobs (jobs, checkpoint,
    // retries, watchdog) from the environment like every bench.
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    std::vector<MemSimResult> results = runSweep(cells, opts);
    const MemSimResult &base = results[0];

    Table table("Serial-MNM energy breakdown for " + app + " [uJ]");
    table.setHeader({"config", "hit probes", "miss probes", "fills",
                     "mnm", "total", "saved%"});
    auto add = [&](const std::string &label, const MemSimResult &r) {
        // saved% is baseline-relative; gap it when either cell failed.
        double saved =
            (base.failed || r.failed)
                ? std::numeric_limits<double>::quiet_NaN()
                : 100.0 * (base.energy.total() - r.energy.total()) /
                      base.energy.total();
        table.addRow(label,
                     {sweepCell(r, r.energy.probe_hit_pj / 1e6),
                      sweepCell(r, r.energy.probe_miss_pj / 1e6),
                      sweepCell(r, r.energy.fill_pj / 1e6),
                      sweepCell(r, r.energy.mnm_pj / 1e6),
                      sweepCell(r, r.energy.total() / 1e6), saved},
                     2);
    };
    for (std::size_t i = 0; i < cells.size(); ++i)
        add(cells[i].label, results[i]);
    table.print();

    std::puts("Notes: 'miss probes' is the waste the MNM attacks; "
              "'mnm' is what it costs. Perfect is the zero-cost oracle "
              "bound (paper Section 4.4).");
    return sweepExitCode();
}
