/**
 * @file
 * Workload explorer: sizing an MNM for a given workload. Sweeps TMNM
 * and CMNM configurations, reporting coverage against storage budget --
 * the trade study an architect would run before committing area. The
 * candidates run concurrently on the sweep engine (MNM_JOBS workers).
 *
 *   ./workload_explorer [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/memory_sim.hh"
#include "sim/runner.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace mnm;

namespace
{

struct Candidate
{
    const char *label;
    MnmSpec spec;
};

/** What one candidate's cell reports back. */
struct Sizing
{
    double coverage = 0.0;
    std::uint64_t storage_bits = 0;
};

Sizing
runCoverage(const MnmSpec &spec, const std::string &app,
            std::uint64_t instructions)
{
    MemorySimulator sim(paperHierarchy(5), spec);
    Sizing sizing;
    sizing.storage_bits = sim.mnm()->storageBits();
    auto workload = makeSpecWorkload(app);
    sim.run(*workload, instructions / 10); // warm-up
    MemSimResult r = sim.run(*workload, instructions);
    sizing.coverage = r.coverage.coverage();
    return sizing;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initRunTelemetry("workload_explorer");
    std::string app = argc > 1 ? argv[1] : "255.vortex";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

    std::vector<Candidate> candidates;
    for (std::uint32_t bits : {8u, 10u, 12u, 14u}) {
        for (std::uint32_t tables : {1u, 2u, 3u}) {
            char label[32];
            std::snprintf(label, sizeof(label), "TMNM_%ux%u", bits,
                          tables);
            candidates.push_back(
                {"", makeUniformSpec(TmnmSpec{bits, tables, 3})});
            candidates.back().label = candidates.back().spec.name.c_str();
        }
    }
    for (std::uint32_t regs : {2u, 4u, 8u, 16u}) {
        candidates.push_back({"", makeUniformSpec(CmnmSpec{
                                      regs, 10, 3,
                                      CmnmMaskPolicy::Monotone})});
        candidates.back().label = candidates.back().spec.name.c_str();
    }

    Table table("MNM sizing study for " + app);
    table.setHeader({"config", "storage[KB]", "coverage%",
                     "coverage%/KB"});
    ParallelRunner runner(jobsFromEnv());
    std::vector<Sizing> sizings;
    try {
        sizings = runner.map<Sizing>(
            candidates.size(), [&](std::size_t i) {
                return runCoverage(candidates[i].spec, app,
                                   instructions);
            });
    } catch (const SweepFailure &e) {
        fatal("%s", e.what());
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const Sizing &s = sizings[i];
        double kb = static_cast<double>(s.storage_bits) / 8.0 / 1024.0;
        table.addRow(candidates[i].spec.name,
                     {kb, 100.0 * s.coverage,
                      kb > 0 ? 100.0 * s.coverage / kb : 0.0},
                     2);
    }
    table.print();

    std::puts("Reading the last column: coverage per kilobyte of MNM "
              "state -- the knee of the curve is where the paper's "
              "chosen configurations sit.");
    return 0;
}
