/**
 * @file
 * Scheduler hints: the paper's Section 4.5 sketch, made concrete. The
 * MNM's verdicts predict, before a load issues, how deep into the
 * hierarchy it will have to travel -- a load whose first k levels are
 * all "no" has a known minimum latency. An instruction scheduler can
 * use that to deprioritize dependents of long-latency loads instead of
 * discovering the miss cycles later.
 *
 * This example quantifies the quality of that hint: for every load it
 * records the MNM's predicted minimum supply level and compares it with
 * the actual supply level.
 *
 *   ./scheduler_hints [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "core/presets.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "trace/spec2000.hh"
#include "util/table.hh"

using namespace mnm;

int
main(int argc, char **argv)
{
    initRunTelemetry("scheduler_hints");
    std::string app = argc > 1 ? argv[1] : "176.gcc";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400000;

    CacheHierarchy hierarchy(paperHierarchy(5));
    MnmUnit mnm(makeHmnmSpec(4), hierarchy);
    auto workload = makeSpecWorkload(app);

    // predicted minimum supply level (1..6) x actual supply level.
    constexpr int max_level = 7;
    std::uint64_t matrix[max_level][max_level] = {};
    std::uint64_t loads = 0;
    std::uint64_t useful_hints = 0; // predicted >= L3 and correct-or-under

    Instruction inst;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        workload->next(inst);
        if (inst.cls != InstClass::Load) {
            if (inst.isMem())
                hierarchy.access(AccessType::Store, inst.mem_addr,
                                 mnm.computeBypass(AccessType::Store,
                                                   inst.mem_addr));
            continue;
        }
        BypassMask mask =
            mnm.computeBypass(AccessType::Load, inst.mem_addr);
        // The predicted minimum supply level: the first level (>= 1)
        // the MNM does NOT rule out. L1 is never predicted.
        int predicted = 1;
        for (std::uint32_t level = 2; level <= hierarchy.levels();
             ++level) {
            CacheId id =
                hierarchy.path(AccessType::Load)[level - 1];
            if (predicted == static_cast<int>(level) - 1 &&
                mask.test(id)) {
                predicted = static_cast<int>(level);
            }
        }
        // predicted==k means "definitely not in levels 2..k" (when the
        // run of consecutive bypass bits starts at level 2); the load
        // must be served at level >= predicted+1 unless it hits L1.
        AccessResult r =
            hierarchy.access(AccessType::Load, inst.mem_addr, mask);
        ++loads;
        int actual = r.supply_level;
        matrix[std::min(predicted + 1, max_level - 1)]
              [std::min(actual, max_level - 1)]++;
        if (predicted >= 2 && (actual > predicted || actual == 1))
            ++useful_hints;
    }

    Table table("Scheduler hint quality for " + app +
                " (rows: predicted min supply; cols: actual)");
    table.setHeader({"pred\\actual", "L1", "L2", "L3", "L4", "L5",
                     "mem"});
    const char *row_names[max_level] = {"", "(none)", ">=L2", ">=L3",
                                        ">=L4", ">=L5", ">=mem"};
    for (int p = 1; p < max_level; ++p) {
        std::vector<double> row;
        for (int a = 1; a < max_level; ++a)
            row.push_back(static_cast<double>(matrix[p][a]));
        table.addRow(row_names[p], row, 0);
    }
    table.print();

    std::printf("loads: %llu; hints naming >=L3 that were safe "
                "(actual at/below the prediction or an L1 hit): "
                "%llu\n",
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(useful_hints));
    std::puts("Soundness means a hint can only UNDER-estimate the "
              "supply depth, never over-estimate it: a scheduler can "
              "trust 'at least this slow'.");
    return 0;
}
