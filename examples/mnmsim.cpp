/**
 * @file
 * mnmsim: the command-line face of the library. One binary to run any
 * machine x MNM x workload combination in either simulation mode.
 *
 *   ./mnmsim [options]
 *     --levels N           cache levels: 2, 3, 5 (default) or 7
 *     --mnm CONFIG         e.g. HMNM4, TMNM_12x3, CMNM_8_10, Perfect,
 *                          or 'none' (default)
 *     --placement P        parallel (default) | serial | distributed
 *     --app NAME           workload (default 181.mcf); accepts short
 *                          names ("mcf") too
 *     --instructions N     instruction budget (default 1000000)
 *     --timing             use the out-of-order core (default:
 *                          functional memory-system mode)
 *     --cycle-core         with --timing: use the cycle-driven
 *                          reference core instead of the fast model
 *     --sample             functional mode: use windowed sampling and
 *                          report the per-window spread
 *     --trace FILE         replay a captured trace instead of --app
 *     --capture FILE       capture the workload to a trace file & exit
 *     --list               list workloads and MNM presets & exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/presets.hh"
#include "cpu/cycle_core.hh"
#include "obs/manifest.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/sampling.hh"
#include "trace/spec2000.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

using namespace mnm;

namespace
{

struct Options
{
    int levels = 5;
    std::string mnm = "none";
    std::string placement = "parallel";
    std::string app = "181.mcf";
    std::uint64_t instructions = 1'000'000;
    bool timing = false;
    bool cycle_core = false;
    bool sample = false;
    std::string trace;
    std::string capture;
};

[[noreturn]] void
usageAndExit()
{
    std::fputs("usage: mnmsim [--levels N] [--mnm CONFIG] "
               "[--placement parallel|serial|distributed]\n"
               "              [--app NAME] [--instructions N] "
               "[--timing] [--cycle-core] [--sample]\n"
               "              [--trace FILE] [--capture FILE] "
               "[--list]\n",
               stderr);
    std::exit(1);
}

std::string
resolveApp(const std::string &name)
{
    for (const std::string &full : specAllNames()) {
        if (full == name ||
            ExperimentOptions::shortName(full) == name) {
            return full;
        }
    }
    fatal("unknown workload '%s' (try --list)", name.c_str());
}

Options
parse(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usageAndExit();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--levels")) {
            opts.levels = std::atoi(need(i));
        } else if (!std::strcmp(arg, "--mnm")) {
            opts.mnm = need(i);
        } else if (!std::strcmp(arg, "--placement")) {
            opts.placement = need(i);
        } else if (!std::strcmp(arg, "--app")) {
            opts.app = need(i);
        } else if (!std::strcmp(arg, "--instructions")) {
            opts.instructions = std::strtoull(need(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--timing")) {
            opts.timing = true;
        } else if (!std::strcmp(arg, "--cycle-core")) {
            opts.cycle_core = true;
        } else if (!std::strcmp(arg, "--sample")) {
            opts.sample = true;
        } else if (!std::strcmp(arg, "--trace")) {
            opts.trace = need(i);
        } else if (!std::strcmp(arg, "--capture")) {
            opts.capture = need(i);
        } else if (!std::strcmp(arg, "--list")) {
            std::puts("workloads:");
            for (const std::string &name : specAllNames())
                std::printf("  %s\n", name.c_str());
            std::puts("mnm presets: none Perfect HMNM1..HMNM4 and any");
            std::puts("  RMNM_<n>_<w> SMNM_<w>x<r> TMNM_<b>x<r> "
                      "CMNM_<k>_<m>");
            std::exit(0);
        } else {
            usageAndExit();
        }
    }
    if (opts.instructions == 0)
        fatal("--instructions must be positive");
    return opts;
}

std::unique_ptr<WorkloadGenerator>
makeWorkload(const Options &opts)
{
    if (!opts.trace.empty())
        return std::make_unique<TraceReader>(opts.trace);
    return makeSpecWorkload(resolveApp(opts.app));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initRunTelemetry("mnmsim");
    Options opts = parse(argc, argv);

    auto workload = makeWorkload(opts);
    if (!opts.capture.empty()) {
        TraceWriter writer(opts.capture, workload->name());
        writer.capture(*workload, opts.instructions);
        inform("captured %llu instructions of %s to %s",
               static_cast<unsigned long long>(writer.written()),
               workload->name().c_str(), opts.capture.c_str());
        return 0;
    }

    std::optional<MnmSpec> mnm_spec;
    if (opts.mnm != "none") {
        MnmSpec spec = mnmSpecByName(opts.mnm);
        if (opts.placement == "serial") {
            spec.placement = MnmPlacement::Serial;
        } else if (opts.placement == "distributed") {
            spec.placement = MnmPlacement::Distributed;
        } else if (opts.placement != "parallel") {
            fatal("unknown placement '%s'", opts.placement.c_str());
        }
        mnm_spec = spec;
    }

    HierarchyParams machine = paperHierarchy(opts.levels);
    std::printf("machine: %d-level, workload: %s, mnm: %s (%s), "
                "%llu instructions\n\n",
                opts.levels, workload->name().c_str(),
                opts.mnm.c_str(), opts.placement.c_str(),
                static_cast<unsigned long long>(opts.instructions));

    if (opts.timing) {
        CacheHierarchy hierarchy(machine);
        std::unique_ptr<MnmUnit> mnm;
        if (mnm_spec)
            mnm = std::make_unique<MnmUnit>(*mnm_spec, hierarchy);
        CpuRunStats stats;
        if (opts.cycle_core) {
            CycleOooCore core(paperCpu(opts.levels), hierarchy,
                              mnm.get());
            stats = core.run(*workload, opts.instructions);
        } else {
            OooCore core(paperCpu(opts.levels), hierarchy, mnm.get());
            stats = core.run(*workload, opts.instructions);
        }
        std::printf("cycles:            %llu\n",
                    static_cast<unsigned long long>(stats.cycles));
        std::printf("ipc:               %.3f\n", stats.ipc());
        std::printf("avg data access:   %.2f cycles\n",
                    stats.avgDataAccessTime());
        std::printf("loads/stores:      %llu / %llu\n",
                    static_cast<unsigned long long>(stats.loads),
                    static_cast<unsigned long long>(stats.stores));
        std::printf("branch mispredicts:%llu\n",
                    static_cast<unsigned long long>(stats.mispredicts));
        if (mnm) {
            std::printf("mnm energy:        %.2f uJ, violations: %llu\n",
                        mnm->consumedEnergyPj() / 1e6,
                        static_cast<unsigned long long>(
                            mnm->soundnessViolations()));
        }
        return 0;
    }

    MemorySimulator sim(machine, mnm_spec);
    MemSimResult r;
    if (opts.sample) {
        SamplingPlan plan;
        plan.fast_forward = opts.instructions / 5;
        plan.window = opts.instructions / 5;
        plan.windows = 4;
        plan.stride = 0;
        SampledResult sampled = runSampled(sim, *workload, plan);
        r = sampled.combined;
        std::printf("sampling: 4 windows, access-time spread %.1f%%\n",
                    100.0 * sampled.accessTimeSpread());
    } else {
        sim.run(*workload, opts.instructions / 10); // warm-up
        r = sim.run(*workload, opts.instructions);
    }

    std::printf("avg data access:   %.2f cycles\n", r.avgAccessTime());
    std::printf("miss-time fraction:%.1f%%\n",
                100.0 * r.missTimeFraction());
    std::printf("cache energy:      %.2f uJ (%.1f%% on misses)\n",
                r.energy.cacheTotal() / 1e6,
                100.0 * r.energy.missFraction());
    if (mnm_spec) {
        std::printf("mnm coverage:      %.1f%%\n",
                    100.0 * r.coverage.coverage());
        std::printf("mnm energy:        %.2f uJ\n",
                    r.energy.mnm_pj / 1e6);
        std::printf("violations:        %llu\n",
                    static_cast<unsigned long long>(
                        r.soundness_violations));
    }
    for (const CacheSnapshot &c : r.caches) {
        std::printf("  %-4s L%u %10llu probes %7.2f%% hit %10llu "
                    "bypassed\n",
                    c.name.c_str(), c.level,
                    static_cast<unsigned long long>(c.accesses),
                    100.0 * c.hit_rate,
                    static_cast<unsigned long long>(c.bypasses));
    }
    return 0;
}
